//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the index) and renders through a
//! [`Reporter`]: plain text by default (a `paper` column next to the
//! `measured` column so deviations are visible at a glance), or a single
//! machine-readable JSON document with `--json`; `EXPERIMENTS.md` records
//! a snapshot. `--trace-out <path>` additionally captures a telemetry
//! trace (Chrome/Perfetto `trace_event` format) where the binary supports
//! it.

use telemetry::json::Json;

pub mod regress;

/// Command-line flags shared by the regeneration binaries.
///
/// Recognized flags are consumed; everything else lands in `rest` in
/// order (e.g. the workload name of `trace_workload`).
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--json`: emit one JSON document instead of plain-text tables.
    pub json: bool,
    /// `--trace-out <path>`: write a Chrome/Perfetto trace of the run.
    pub trace_out: Option<std::path::PathBuf>,
    /// Positional arguments, in order.
    pub rest: Vec<String>,
}

impl BenchArgs {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable variant of [`parse`]).
    ///
    /// [`parse`]: BenchArgs::parse
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => out.json = true,
                "--trace-out" => {
                    let path = it.next().unwrap_or_else(|| {
                        eprintln!("--trace-out requires a path argument");
                        std::process::exit(2);
                    });
                    out.trace_out = Some(path.into());
                }
                _ => out.rest.push(a),
            }
        }
        out
    }
}

/// Renders benchmark output as aligned plain-text tables (default) or as
/// one machine-readable JSON document (`--json`).
///
/// Text mode prints each table as it arrives; JSON mode accumulates and
/// emits everything in [`Reporter::finish`], so a `--json` run prints
/// nothing but the document:
///
/// ```json
/// {"tables": [{"title": "...", "headers": [...], "rows": [[...]]}],
///  "notes": ["..."]}
/// ```
pub struct Reporter {
    json: bool,
    tables: Vec<Json>,
    notes: Vec<Json>,
}

impl Reporter {
    /// Creates a reporter; `json = true` selects the JSON document mode.
    pub fn new(json: bool) -> Self {
        Reporter { json, tables: Vec::new(), notes: Vec::new() }
    }

    /// Reporter configured from parsed [`BenchArgs`].
    pub fn from_args(args: &BenchArgs) -> Self {
        Self::new(args.json)
    }

    /// Whether the reporter is in JSON mode (callers can skip progress
    /// chatter that would corrupt the document).
    pub fn is_json(&self) -> bool {
        self.json
    }

    /// Adds a titled table. Text mode prints it immediately.
    pub fn table(&mut self, title: &str, headers: &[&str], rows: &[Vec<String>]) {
        if self.json {
            let mut obj = std::collections::BTreeMap::new();
            obj.insert("title".to_string(), Json::Str(title.to_string()));
            obj.insert(
                "headers".to_string(),
                Json::Arr(headers.iter().map(|h| Json::Str(h.to_string())).collect()),
            );
            obj.insert(
                "rows".to_string(),
                Json::Arr(
                    rows.iter()
                        .map(|r| Json::Arr(r.iter().map(|c| Json::Str(c.clone())).collect()))
                        .collect(),
                ),
            );
            self.tables.push(Json::Obj(obj));
        } else {
            if !title.is_empty() {
                println!("{title}\n");
            }
            print_table(headers, rows);
            println!();
        }
    }

    /// Adds a free-text note. Text mode prints it immediately.
    pub fn note(&mut self, text: &str) {
        if self.json {
            self.notes.push(Json::Str(text.to_string()));
        } else {
            println!("{text}");
        }
    }

    /// Flushes the report: a no-op in text mode, the whole document in
    /// JSON mode.
    pub fn finish(self) {
        if self.json {
            println!("{}", self.to_json());
        }
    }

    /// The accumulated document as a JSON value (JSON mode only; text
    /// mode prints eagerly and accumulates nothing).
    fn to_json(&self) -> Json {
        let mut doc = std::collections::BTreeMap::new();
        doc.insert("tables".to_string(), Json::Arr(self.tables.clone()));
        doc.insert("notes".to_string(), Json::Arr(self.notes.clone()));
        Json::Obj(doc)
    }
}

/// Telemetry handle for a binary: enabled when `--trace-out` was given,
/// disabled (free) otherwise, and stamped with host/feature metadata via
/// [`stamp_host_meta`] so every exported snapshot is self-describing.
pub fn telemetry_from_args(args: &BenchArgs) -> telemetry::Telemetry {
    let tel = if args.trace_out.is_some() {
        telemetry::Telemetry::enabled()
    } else {
        telemetry::Telemetry::disabled()
    };
    stamp_host_meta(&tel);
    tel
}

/// Records the facts needed to interpret a trace captured on another
/// machine: worker-thread budget, whether the `parallel` feature was
/// compiled in, physical memory, and the producing git commit.
pub fn stamp_host_meta(tel: &telemetry::Telemetry) {
    tel.set_meta("host.threads", &fhe_math::par::max_threads().to_string());
    tel.set_meta("host.parallel_compiled", &fhe_math::par::parallelism_compiled().to_string());
    if let Some(mb) = mem_total_mb() {
        tel.set_meta("host.mem_total_mb", &mb.to_string());
    }
    tel.set_meta("git.commit", &git_commit());
}

/// Physical memory of this host in megabytes: `MemTotal` from
/// `/proc/meminfo` on Linux, `None` elsewhere (baseline comparisons then
/// skip the memory-class check rather than guessing).
pub fn mem_total_mb() -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let text = std::fs::read_to_string("/proc/meminfo").ok()?;
    parse_mem_total_mb(&text)
}

/// Parses the `MemTotal: <n> kB` line of a `/proc/meminfo` document.
fn parse_mem_total_mb(meminfo: &str) -> Option<u64> {
    let line = meminfo.lines().find(|l| l.starts_with("MemTotal:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024)
}

/// Short git commit hash of the working tree, or `"unknown"` outside a
/// repository (benchmarks must keep working from an unpacked tarball).
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Writes the captured telemetry trace to `path`, exiting with a clear
/// message instead of a panic when the path is not writable.
pub fn write_trace(tel: &telemetry::Telemetry, path: &std::path::Path) {
    if let Err(e) = tel.snapshot().write_chrome_trace(path) {
        eprintln!("failed to write trace to {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Prints an aligned plain-text table.
///
/// # Example
///
/// ```
/// bench::print_table(
///     &["op", "value"],
///     &[vec!["Pmult".into(), "42".into()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!("{}", widths.iter().map(|w| "-".repeat(*w + 2)).collect::<String>());
    for row in rows {
        line(row);
    }
}

/// Formats a throughput (ops/s) with thousands separators.
pub fn fmt_ops(v: f64) -> String {
    if v >= 1000.0 {
        let int = v.round() as u64;
        let s = int.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    } else {
        format!("{v:.2}")
    }
}

/// Formats seconds using an appropriate unit.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.2} us", seconds * 1e6)
    } else {
        format!("{:.0} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_ops(946_970.4), "946,970");
        assert_eq!(fmt_ops(38.14), "38.14");
        assert_eq!(fmt_time(0.0023), "2.30 ms");
        assert_eq!(fmt_time(2.0), "2.00 s");
        assert_eq!(fmt_time(4.2e-5), "42.00 us");
    }

    #[test]
    fn mem_total_parses_proc_meminfo_shape() {
        let doc = "MemTotal:       32796552 kB\nMemFree:        11111111 kB\n";
        assert_eq!(parse_mem_total_mb(doc), Some(32027));
        assert_eq!(parse_mem_total_mb("MemFree: 1 kB\n"), None);
        assert_eq!(parse_mem_total_mb("MemTotal: junk kB\n"), None);
        // On Linux the live reading must agree with the parser's contract.
        if cfg!(target_os = "linux") {
            let mb = mem_total_mb().expect("/proc/meminfo readable on Linux");
            assert!(mb > 0);
        }
    }

    #[test]
    fn args_consume_flags_and_keep_positionals() {
        let a = BenchArgs::parse_from(
            ["bootstrapping", "--trace-out", "/tmp/t.json", "--json"].map(String::from),
        );
        assert!(a.json);
        assert_eq!(a.trace_out.as_deref(), Some(std::path::Path::new("/tmp/t.json")));
        assert_eq!(a.rest, vec!["bootstrapping".to_string()]);

        let b = BenchArgs::parse_from(std::iter::empty());
        assert!(!b.json && b.trace_out.is_none() && b.rest.is_empty());
    }

    #[test]
    fn json_reporter_builds_a_parseable_document() {
        let mut r = Reporter::new(true);
        r.note("caveat about units");
        r.table(
            "Table X",
            &["op", "value"],
            &[vec!["Pmult".into(), "42".into()], vec!["HAdd".into(), "7".into()]],
        );
        let doc = r.to_json();
        let parsed = telemetry::json::parse(&doc.to_string()).expect("round-trips");
        let tables = parsed.get("tables").and_then(Json::as_arr).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].get("title").and_then(Json::as_str), Some("Table X"));
        let rows = tables[0].get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].as_arr().unwrap()[1].as_str(), Some("7"));
        let notes = parsed.get("notes").and_then(Json::as_arr).unwrap();
        assert_eq!(notes[0].as_str(), Some("caveat about units"));
    }
}
