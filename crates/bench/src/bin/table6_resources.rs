//! Regenerates **Table 6**: resource usage across FHE accelerators.

use alchemist_core::{ArchConfig, AreaModel};
use baselines::designs::table6_designs;
use bench::{BenchArgs, Reporter};

fn main() {
    let mut rep = Reporter::from_args(&BenchArgs::parse());
    let arch = ArchConfig::paper();
    let area = AreaModel::new(arch);
    let mut rows: Vec<Vec<String>> = table6_designs()
        .iter()
        .map(|d| {
            vec![
                d.name.to_string(),
                format!(
                    "({},{})",
                    if d.arithmetic { "Y" } else { "-" },
                    if d.logic { "Y" } else { "-" }
                ),
                format!("{:.0} GB/s", d.offchip_gbps),
                format!("{:.0} MB", d.onchip_mb),
                if d.onchip_tbps > 0.0 { format!("{:.0} TB/s", d.onchip_tbps) } else { "/".into() },
                format!("{:.1} GHz", d.freq_ghz),
                format!("{:.1}", d.area_mm2),
                format!("{:.1}", d.area_14nm_mm2),
            ]
        })
        .collect();
    rows.push(vec![
        "Alchemist".into(),
        "(Y,Y)".into(),
        format!("{:.0} GB/s", arch.hbm_bytes_per_cycle * arch.freq_ghz),
        format!("{:.0} MB", arch.total_sram_kib() as f64 / 1024.0),
        format!("{:.0} TB/s", arch.onchip_bytes_per_cycle * arch.freq_ghz / 1000.0),
        format!("{:.1} GHz", arch.freq_ghz),
        format!("{:.1}", area.total_mm2()),
        format!("{:.1}", area.total_mm2()),
    ]);
    rep.table(
        "Table 6: Resource usage in FHE accelerators",
        &["Design", "(AC,LC)", "Off-chip BW", "On-chip cap", "On-chip BW", "Freq", "Area", "14nm"],
        &rows,
    );
    rep.note("Only Alchemist supports both arithmetic (AC) and logic (LC) FHE.");
    rep.note(&format!(
        "vs SHARP: SRAM {:.0}% smaller, area {:.0}% smaller (paper: >60% and >50%).",
        (1.0 - 66.0 / 180.0) * 100.0,
        (1.0 - area.total_mm2() / 379.0) * 100.0
    ));
    rep.finish();
}
