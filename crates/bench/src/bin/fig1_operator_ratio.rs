//! Regenerates **Figure 1**: operator ratio (NTT / Bconv / DecompPolyMult)
//! per workload, and overall hardware utilization of each accelerator on
//! those workloads (plus the Table 4 access-pattern summary).

use alchemist_core::{workloads, ArchConfig, Simulator};
use baselines::designs::{CRATERLAKE, F1, SHARP, STRIX};
use baselines::modular::WorkProfile;
use bench::{BenchArgs, Reporter};
use metaop::counts::{bootstrapping, cmult, pbs, CkksCountParams, TfheCountParams};
use metaop::{AccessPattern, OpClass};

fn main() {
    let args = BenchArgs::parse();
    let mut rep = Reporter::from_args(&args);
    let p = CkksCountParams::paper_default();

    let workload_mults = [
        ("TFHE-PBS", pbs(&TfheCountParams::set_i())),
        ("Cmult-L=24", cmult(&p.at_level(24))),
        ("Cmult-L=44", cmult(&p.at_level(44))),
        ("BSP-L=24", bootstrapping(&CkksCountParams { l_max: 24, level: 24, ..p }, false)),
        ("BSP-L=44", bootstrapping(&p, false)),
        ("BSP-L=44+", bootstrapping(&p, true)),
    ];
    let rows: Vec<Vec<String>> = workload_mults
        .iter()
        .map(|(name, m)| {
            let f = m.class_fractions();
            vec![
                name.to_string(),
                format!("{:.0}%", f[0].1 * 100.0),
                format!("{:.0}%", f[1].1 * 100.0),
                format!("{:.0}%", f[2].1 * 100.0),
                format!("{:.0}%", f[3].1 * 100.0),
            ]
        })
        .collect();
    rep.table(
        "Figure 1 (top): operator ratio in the algorithm",
        &["Workload", "NTT", "Bconv", "DecompPolyMult", "Elementwise"],
        &rows,
    );

    let sp = workloads::CkksSimParams::paper();
    let sim = Simulator::new(ArchConfig::paper());
    let sim_workloads = [
        ("TFHE-PBS", workloads::tfhe_pbs(&workloads::TfheSimParams::set_i(), 128), false),
        ("Cmult-L=24", workloads::cmult(&sp.at_level(24)), true),
        ("Cmult-L=44", workloads::cmult(&sp.at_level(44)), true),
        ("BSP-L=44+", workloads::bootstrapping(&sp), true),
    ];
    let mut rows = Vec::new();
    for (name, steps, is_arith) in &sim_workloads {
        let profile = WorkProfile::from_steps(steps);
        let ours = sim.run(steps);
        let cell = |d: &baselines::BaselineDesign, wants_arith: bool| -> String {
            if (wants_arith && !d.arithmetic) || (!wants_arith && !d.logic) {
                "n/a".into()
            } else {
                format!("{:.2}", d.simulate(&profile).utilization)
            }
        };
        rows.push(vec![
            name.to_string(),
            cell(&F1, *is_arith),
            cell(&CRATERLAKE, *is_arith),
            cell(&SHARP, *is_arith),
            cell(&STRIX, *is_arith),
            format!("{:.2}", ours.utilization()),
        ]);
    }
    rep.table(
        "Figure 1 (bottom): overall hardware utilization per accelerator",
        &["Workload", "F1", "CraterLake", "SHARP", "Strix", "Alchemist"],
        &rows,
    );

    let rows: Vec<Vec<String>> = [OpClass::Ntt, OpClass::DecompPolyMult, OpClass::Bconv]
        .iter()
        .map(|&c| {
            let pat = c.access_pattern();
            let mark = |p: AccessPattern| if pat == p { "Y" } else { "-" };
            vec![
                c.to_string(),
                mark(AccessPattern::Slots).into(),
                mark(AccessPattern::Channel).into(),
                mark(AccessPattern::DnumGroup).into(),
            ]
        })
        .collect();
    rep.table(
        "Table 4: access pattern per operation",
        &["Computation", "Slots", "Channel", "Dnum_group"],
        &rows,
    );
    rep.finish();
}
