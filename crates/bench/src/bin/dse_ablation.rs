//! Design-space exploration and ablations behind §5.4's design choices:
//! lane width `j`, computing-unit count, and slot-based vs channel-based
//! data partitioning.

use alchemist_core::dse;
use bench::{BenchArgs, Reporter};

fn print_points(rep: &mut Reporter, title: &str, points: &[dse::DsePoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{:.1}", p.area_mm2),
                bench::fmt_time(p.seconds),
                format!("{:.2}", p.utilization),
                format!("{:.3}", p.perf_per_area() * 1e3),
            ]
        })
        .collect();
    rep.table(
        title,
        &["Config", "Area (mm2)", "Bootstrap", "Utilization", "Perf/area (1/ms/mm2 x1e3)"],
        &rows,
    );
}

fn main() {
    let mut rep = Reporter::from_args(&BenchArgs::parse());
    print_points(
        &mut rep,
        "Lane-width sweep (paper fixes j = 8, section 4.2):",
        &dse::lane_sweep(),
    );
    print_points(
        &mut rep,
        "Computing-unit sweep (paper selects 128, section 5.4):",
        &dse::unit_sweep(),
    );
    print_points(
        &mut rep,
        "Data partitioning ablation (slot-based vs channel-based, section 5.3):",
        &dse::partitioning_ablation(),
    );
    rep.finish();
}
