//! Regenerates **Figure 6**: (a) CKKS applications — LoLa-MNIST,
//! fully-packed bootstrapping, 1024-batch HELR — against the arithmetic
//! FHE accelerators, and (b) TFHE programmable bootstrapping against
//! Concrete / NuFHE / Matcha / Strix.

use alchemist_core::{workloads, ArchConfig, AreaModel, Simulator};
use baselines::designs::{ARK, BTS, CRATERLAKE, F1, MATCHA, SHARP, STRIX};
use baselines::modular::WorkProfile;
use baselines::published;
use bench::{BenchArgs, Reporter};

fn main() {
    let args = BenchArgs::parse();
    let mut rep = Reporter::from_args(&args);
    let sim = Simulator::new(ArchConfig::paper());
    let our_area = AreaModel::new(ArchConfig::paper()).total_mm2();
    let p = workloads::CkksSimParams::paper();

    // ---- Fig 6a: shallow CKKS (LoLa-MNIST). ----
    let (_, enc_steps) = workloads::lola_mnist(true);
    let (_, unenc_steps) = workloads::lola_mnist(false);
    let t_enc = sim.run(&enc_steps).seconds();
    let t_unenc = sim.run(&unenc_steps).seconds();
    // F1 predates Modup hoisting: it executes the unhoisted graph.
    let (_, f1_enc_steps) = workloads::lola_mnist_unhoisted(true);
    let (_, f1_unenc_steps) = workloads::lola_mnist_unhoisted(false);
    let f1_unenc = F1.simulate(&WorkProfile::from_steps(&f1_unenc_steps)).seconds;
    let f1_enc = F1.simulate(&WorkProfile::from_steps(&f1_enc_steps)).seconds;
    let rows = vec![
        vec![
            "MNIST (unencrypted weights)".to_string(),
            bench::fmt_time(f1_unenc),
            bench::fmt_time(t_unenc),
            format!("{:.1}x", f1_unenc / t_unenc),
        ],
        vec![
            "MNIST (encrypted weights)".to_string(),
            bench::fmt_time(f1_enc),
            bench::fmt_time(t_enc),
            format!("{:.1}x", f1_enc / t_enc),
        ],
    ];
    rep.table(
        "Figure 6a (left): LoLa-MNIST inference latency",
        &["Benchmark", "F1 (model)", "Alchemist", "Speedup"],
        &rows,
    );
    rep.note(&format!(
        "paper: >3x vs F1; encrypted-weight inference {} (paper {}).",
        bench::fmt_time(t_enc),
        bench::fmt_time(published::LOLA_MNIST_ENCRYPTED_S)
    ));

    // ---- Fig 6a: deep CKKS (bootstrapping + HELR). ----
    let boot = workloads::bootstrapping(&p);
    let helr = workloads::helr_iteration(&p);
    let t_boot = sim.run(&boot).seconds();
    let t_helr = sim.run(&helr).seconds();
    let boot_profile = WorkProfile::from_steps(&boot);
    let helr_profile = WorkProfile::from_steps(&helr);
    let designs = [("BTS", BTS), ("ARK", ARK), ("CraterLake+", CRATERLAKE), ("SHARP", SHARP)];
    let mut rows = Vec::new();
    let mut perf_rows = Vec::new();
    for (i, (name, d)) in designs.iter().enumerate() {
        let b = d.simulate(&boot_profile).seconds;
        let h = d.simulate(&helr_profile).seconds;
        let avg_speedup = ((b / t_boot) + (h / t_helr)) / 2.0;
        rows.push(vec![
            name.to_string(),
            bench::fmt_time(b),
            bench::fmt_time(h),
            format!("{avg_speedup:.1}x"),
            format!("{:.1}x", published::FIG6A_SPEEDUPS[i].1),
        ]);
        let ppa = avg_speedup * d.area_14nm_mm2 / our_area;
        perf_rows.push(vec![
            name.to_string(),
            format!("{ppa:.1}x"),
            format!("{:.1}x", published::FIG6A_PERF_PER_AREA[i].1),
        ]);
    }
    rows.push(vec![
        "Alchemist".to_string(),
        bench::fmt_time(t_boot),
        bench::fmt_time(t_helr),
        "1.0x".into(),
        "1.0x".into(),
    ]);
    rep.table(
        "Figure 6a (right): fully-packed bootstrapping and HELR-1024",
        &["Design", "Bootstrap", "HELR iter", "Avg speedup (model)", "Avg speedup (paper)"],
        &rows,
    );
    let avg_model: f64 = perf_rows
        .iter()
        .map(|r| r[1].trim_end_matches('x').parse::<f64>().unwrap_or(0.0))
        .sum::<f64>()
        / perf_rows.len() as f64;
    rep.table(
        "performance per area vs each design:",
        &["Design", "Perf/area (model)", "Perf/area (paper)"],
        &perf_rows,
    );
    rep.note(&format!("average perf/area improvement: {avg_model:.1}x (paper: 29.4x)"));

    // ---- Fig 6b: TFHE PBS. ----
    let mut rows = Vec::new();
    for (tp, name) in [
        (workloads::TfheSimParams::set_i(), "Set I"),
        (workloads::TfheSimParams::set_ii(), "Set II"),
    ] {
        let batch = 128u64;
        let steps = workloads::tfhe_pbs(&tp, batch);
        let ours = batch as f64 / sim.run(&steps).seconds();
        let profile = WorkProfile::from_steps(&steps);
        let matcha = batch as f64 / MATCHA.simulate(&profile).seconds;
        let strix = batch as f64 / STRIX.simulate(&profile).seconds;
        let concrete = ours / published::FIG6B_CONCRETE_SPEEDUP;
        let nufhe = ours / published::FIG6B_NUFHE_SPEEDUP;
        rows.push(vec![
            name.to_string(),
            bench::fmt_ops(concrete),
            bench::fmt_ops(nufhe),
            bench::fmt_ops(matcha),
            bench::fmt_ops(strix),
            bench::fmt_ops(ours),
            format!("{:.1}x", (ours / matcha + ours / strix) / 2.0),
        ]);
    }
    rep.table(
        "Figure 6b: TFHE programmable bootstrapping throughput",
        &[
            "Params",
            "Concrete*",
            "NuFHE*",
            "Matcha (model)",
            "Strix (model)",
            "Alchemist",
            "ASIC avg speedup",
        ],
        &rows,
    );
    rep.note(
        "* Concrete/NuFHE columns derived from the paper's reported 1600x / 105x speedups.\npaper: ~7.0x average speedup over the TFHE ASICs.",
    );
    rep.finish();
}
