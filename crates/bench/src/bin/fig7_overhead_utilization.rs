//! Regenerates **Figure 7**: (a) computation overhead of Cmult and
//! bootstrapping with and without the Meta-OP `(M_j A_j)_n R_j`
//! transformation, and (b) utilization-rate comparison against SHARP and
//! CraterLake. Supports `--json` and `--trace-out <path>` (Perfetto trace
//! of the bootstrapping + HELR simulator runs).

use alchemist_core::{workloads, ArchConfig, Simulator};
use baselines::designs::{CRATERLAKE, SHARP};
use baselines::modular::WorkProfile;
use baselines::published;
use bench::{BenchArgs, Reporter};
use metaop::counts::{bootstrapping, cmult, pbs, CkksCountParams, TfheCountParams};
use metaop::OpClass;

fn main() {
    let args = BenchArgs::parse();
    let mut rep = Reporter::from_args(&args);
    let p = CkksCountParams::paper_default();

    let cases = [
        ("TFHE PBS", pbs(&TfheCountParams::set_i())),
        ("CKKS Cmult L=24", cmult(&p.at_level(24))),
        ("CKKS BSP L=44 (hoisted)", bootstrapping(&p, true)),
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .zip(published::FIG7A_CHANGES)
        .map(|((name, m), (_, paper_pct))| {
            vec![
                name.to_string(),
                format!("{:.3e}", m.total_original() as f64),
                format!("{:.3e}", m.total_meta() as f64),
                format!("{:+.1}%", m.change_pct()),
                format!("{paper_pct:+.1}%"),
            ]
        })
        .collect();
    rep.table(
        "Figure 7a: multiplication overhead w/ and w/o (MjAj)nRj",
        &[
            "Workload",
            "#Mults w/o Meta-OP",
            "#Mults w/ Meta-OP",
            "Change (measured)",
            "Change (paper)",
        ],
        &rows,
    );

    let sim = Simulator::new(ArchConfig::paper());
    let sp = workloads::CkksSimParams::paper();
    let boot = workloads::bootstrapping(&sp);
    let helr = workloads::helr_iteration(&sp);
    let tel = bench::telemetry_from_args(&args);
    let boot_report = sim.run_traced(&boot, &tel);
    let helr_report = sim.run_traced(&helr, &tel);
    let boot_profile = WorkProfile::from_steps(&boot);
    let helr_profile = WorkProfile::from_steps(&helr);

    let rows = vec![
        vec![
            "Alchemist per-class (NTT/Bconv/Decomp)".to_string(),
            format!(
                "{:.2} / {:.2} / {:.2}",
                boot_report.class_utilization(OpClass::Ntt),
                boot_report.class_utilization(OpClass::Bconv),
                boot_report.class_utilization(OpClass::DecompPolyMult)
            ),
            "0.85 / 0.89 / 0.87".to_string(),
        ],
        vec![
            "Alchemist overall (boot / HELR)".to_string(),
            format!("{:.2} / {:.2}", boot_report.utilization(), helr_report.utilization()),
            format!("{:.2} (paper avg)", published::FIG7B_ALCHEMIST_OVERALL),
        ],
        vec![
            "SHARP overall (boot / HELR)".to_string(),
            format!(
                "{:.2} / {:.2}",
                SHARP.simulate(&boot_profile).utilization,
                SHARP.simulate(&helr_profile).utilization
            ),
            "0.55 / 0.52".to_string(),
        ],
        vec![
            "CraterLake overall (boot)".to_string(),
            format!("{:.2}", CRATERLAKE.simulate(&boot_profile).utilization),
            "0.42".to_string(),
        ],
    ];
    rep.table(
        "Figure 7b: utilization rates on bootstrapping (HELR-1024)",
        &["Metric", "Measured", "Paper"],
        &rows,
    );

    let improvement = boot_report.utilization() / SHARP.simulate(&boot_profile).utilization;
    rep.note(&format!(
        "utilization improvement over SHARP: {improvement:.2}x (paper: ~1.57x);\nboot {} | HELR iter {}",
        bench::fmt_time(boot_report.seconds()),
        bench::fmt_time(helr_report.seconds()),
    ));

    if let Some(path) = &args.trace_out {
        bench::write_trace(&tel, path);
        rep.note(&format!(
            "telemetry trace written to {} (open in ui.perfetto.dev)",
            path.display()
        ));
    }
    rep.finish();
}
