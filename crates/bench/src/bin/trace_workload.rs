//! Prints the step-by-step schedule of a named workload on the Alchemist
//! simulator — the compiled instruction stream a downstream user would
//! inspect when porting a new FHE application.
//!
//! ```sh
//! cargo run -p bench --bin trace_workload -- cmult
//! cargo run -p bench --bin trace_workload -- bootstrapping --json
//! cargo run -p bench --bin trace_workload -- bootstrapping \
//!     --trace-out /tmp/trace.json   # open in ui.perfetto.dev
//! ```

use alchemist_core::{workloads, ArchConfig, Simulator, Step};
use bench::{BenchArgs, Reporter};

fn steps_for(name: &str) -> Option<Vec<Step>> {
    let p = workloads::CkksSimParams::paper();
    Some(match name {
        "pmult" => workloads::pmult(&p),
        "hadd" => workloads::hadd(&p),
        "keyswitch" => workloads::keyswitch(&p),
        "cmult" => workloads::cmult(&p),
        "rotation" => workloads::rotation(&p),
        "bootstrapping" => workloads::bootstrapping(&p),
        "helr" => workloads::helr_iteration(&p),
        "lola" => workloads::lola_mnist(true).1,
        "pbs" => workloads::tfhe_pbs(&workloads::TfheSimParams::set_i(), 128),
        "cross" => workloads::cross_scheme(&p.at_level(24), &workloads::TfheSimParams::set_i(), 2),
        _ => return None,
    })
}

fn main() {
    let args = BenchArgs::parse();
    let mut rep = Reporter::from_args(&args);
    let name = args.rest.first().cloned().unwrap_or_else(|| "cmult".into());
    let Some(steps) = steps_for(&name) else {
        eprintln!(
            "unknown workload '{name}'. options: pmult hadd keyswitch cmult rotation \
             bootstrapping helr lola pbs cross"
        );
        std::process::exit(1);
    };
    let arch = ArchConfig::paper();
    let sim = Simulator::new(arch);

    let tel = bench::telemetry_from_args(&args);
    let report = sim.run_traced(&steps, &tel);

    let shown = steps.len().min(40);
    let rows: Vec<Vec<String>> = steps
        .iter()
        .take(shown)
        .map(|s| {
            vec![
                s.label.clone(),
                s.class.to_string(),
                s.meta_ops.to_string(),
                s.n.to_string(),
                s.compute_cycles(&arch).to_string(),
                s.onchip_cycles(&arch).to_string(),
                s.hbm_cycles(&arch).to_string(),
            ]
        })
        .collect();
    rep.table(
        &format!("workload '{name}' on the paper configuration ({} steps):", steps.len()),
        &["step", "class", "meta-ops", "n", "compute cyc", "sram cyc", "hbm cyc"],
        &rows,
    );
    if steps.len() > shown {
        rep.note(&format!("... ({} more steps)", steps.len() - shown));
    }
    rep.note(&report.summary());

    if let Some(path) = &args.trace_out {
        bench::write_trace(&tel, path);
        rep.note(&format!(
            "telemetry trace written to {} (open in ui.perfetto.dev)",
            path.display()
        ));
    }
    rep.finish();
}
