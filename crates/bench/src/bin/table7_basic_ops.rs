//! Regenerates **Table 7**: throughput of basic CKKS operators at
//! `N = 2^16, L = 44, dnum = 4`.
//!
//! The Alchemist column comes from the cycle simulator; the CPU column is
//! measured live on this machine with the workspace's own software CKKS
//! (single thread) unless `TABLE7_SKIP_CPU=1`, in which case the paper's
//! published CPU numbers are used. GPU and Poseidon columns are the
//! paper's published references.

use alchemist_core::{workloads, ArchConfig, Simulator};
use baselines::cpu::{measure_ckks_op, CkksOp};
use baselines::published::TABLE7;
use fhe_ckks::CkksParams;

fn main() {
    let sim = Simulator::new(ArchConfig::paper());
    let p = workloads::CkksSimParams::paper();
    let ours: Vec<(CkksOp, f64)> = vec![
        (CkksOp::Pmult, 1.0 / sim.run(&workloads::pmult(&p)).seconds()),
        (CkksOp::Hadd, 1.0 / sim.run(&workloads::hadd(&p)).seconds()),
        (CkksOp::Keyswitch, 1.0 / sim.run(&workloads::keyswitch(&p)).seconds()),
        (CkksOp::Cmult, 1.0 / sim.run(&workloads::cmult(&p)).seconds()),
        (CkksOp::Rotation, 1.0 / sim.run(&workloads::rotation(&p)).seconds()),
    ];

    let skip_cpu = std::env::var("TABLE7_SKIP_CPU").is_ok();
    let cpu: Vec<f64> = if skip_cpu {
        TABLE7.iter().map(|r| r.cpu).collect()
    } else {
        println!("measuring CPU baseline at paper parameters (this takes ~a minute)...");
        let params = CkksParams::paper().expect("paper parameters construct");
        CkksOp::all()
            .iter()
            .map(|&op| {
                let iters = match op {
                    CkksOp::Pmult | CkksOp::Hadd => 3,
                    _ => 1,
                };
                1.0 / measure_ckks_op(params.clone(), op, iters).expect("measurement")
            })
            .collect()
    };

    println!("\nTable 7: Throughput (ops/s) for basic operators, N=2^16 L=44 dnum=4\n");
    let rows: Vec<Vec<String>> = TABLE7
        .iter()
        .zip(&ours)
        .zip(&cpu)
        .map(|((reference, (op, alch)), cpu_ops)| {
            vec![
                op.label().to_string(),
                format!(
                    "{}{}",
                    bench::fmt_ops(*cpu_ops),
                    if skip_cpu { " (paper)" } else { " (measured)" }
                ),
                reference.gpu.map_or("/".into(), bench::fmt_ops),
                bench::fmt_ops(reference.poseidon),
                bench::fmt_ops(*alch),
                bench::fmt_ops(reference.alchemist),
                format!("{:.0}x", alch / cpu_ops),
                format!("{:.0}x", reference.speedup),
            ]
        })
        .collect();
    bench::print_table(
        &["Op", "CPU", "GPU*", "Poseidon*", "Alchemist(sim)", "Alchemist(paper)", "Speedup(sim)", "Speedup(paper)"],
        &rows,
    );
    println!("\n* GPU and Poseidon columns are the paper's published references.");
}
