//! Regenerates **Table 7**: throughput of basic CKKS operators at
//! `N = 2^16, L = 44, dnum = 4`.
//!
//! The Alchemist column comes from the cycle simulator; the CPU column is
//! measured live on this machine with the workspace's own software CKKS
//! (single thread) unless `TABLE7_SKIP_CPU=1`, in which case the paper's
//! published CPU numbers are used. GPU and Poseidon columns are the
//! paper's published references. Supports `--json` and `--trace-out
//! <path>` (Perfetto trace of the five simulator runs).

use alchemist_core::{workloads, ArchConfig, Simulator};
use baselines::cpu::{measure_ckks_op, CkksOp};
use baselines::published::TABLE7;
use bench::{BenchArgs, Reporter};
use fhe_ckks::CkksParams;

fn main() {
    let args = BenchArgs::parse();
    let mut rep = Reporter::from_args(&args);
    let sim = Simulator::new(ArchConfig::paper());
    let p = workloads::CkksSimParams::paper();
    let tel = bench::telemetry_from_args(&args);
    let run = |steps: &[alchemist_core::Step]| sim.run_traced(steps, &tel).seconds();
    let ours: Vec<(CkksOp, f64)> = vec![
        (CkksOp::Pmult, 1.0 / run(&workloads::pmult(&p))),
        (CkksOp::Hadd, 1.0 / run(&workloads::hadd(&p))),
        (CkksOp::Keyswitch, 1.0 / run(&workloads::keyswitch(&p))),
        (CkksOp::Cmult, 1.0 / run(&workloads::cmult(&p))),
        (CkksOp::Rotation, 1.0 / run(&workloads::rotation(&p))),
    ];

    let skip_cpu = std::env::var("TABLE7_SKIP_CPU").is_ok();
    let cpu: Vec<f64> = if skip_cpu {
        TABLE7.iter().map(|r| r.cpu).collect()
    } else {
        if !rep.is_json() {
            println!("measuring CPU baseline at paper parameters (this takes ~a minute)...");
        }
        let params = CkksParams::paper().expect("paper parameters construct");
        CkksOp::all()
            .iter()
            .map(|&op| {
                let iters = match op {
                    CkksOp::Pmult | CkksOp::Hadd => 3,
                    _ => 1,
                };
                1.0 / measure_ckks_op(params.clone(), op, iters).expect("measurement")
            })
            .collect()
    };

    let rows: Vec<Vec<String>> = TABLE7
        .iter()
        .zip(&ours)
        .zip(&cpu)
        .map(|((reference, (op, alch)), cpu_ops)| {
            vec![
                op.label().to_string(),
                format!(
                    "{}{}",
                    bench::fmt_ops(*cpu_ops),
                    if skip_cpu { " (paper)" } else { " (measured)" }
                ),
                reference.gpu.map_or("/".into(), bench::fmt_ops),
                bench::fmt_ops(reference.poseidon),
                bench::fmt_ops(*alch),
                bench::fmt_ops(reference.alchemist),
                format!("{:.0}x", alch / cpu_ops),
                format!("{:.0}x", reference.speedup),
            ]
        })
        .collect();
    rep.table(
        "Table 7: Throughput (ops/s) for basic operators, N=2^16 L=44 dnum=4",
        &[
            "Op",
            "CPU",
            "GPU*",
            "Poseidon*",
            "Alchemist(sim)",
            "Alchemist(paper)",
            "Speedup(sim)",
            "Speedup(paper)",
        ],
        &rows,
    );
    rep.note("* GPU and Poseidon columns are the paper's published references.");

    if let Some(path) = &args.trace_out {
        bench::write_trace(&tel, path);
        rep.note(&format!(
            "telemetry trace written to {} (open in ui.perfetto.dev)",
            path.display()
        ));
    }
    rep.finish();
}
