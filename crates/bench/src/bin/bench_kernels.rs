//! Reproducible sequential-vs-parallel baseline for the hot kernels the
//! `parallel` feature accelerates: RNS NTT round-trips, Modup, Moddown and
//! the CKKS mul+rescale pipeline.
//!
//! Both modes run in the same process: the sequential column pins the
//! backend to one thread with [`fhe_math::par::set_max_threads`]`(1)`, the
//! parallel column restores the auto budget (one worker per core). Outputs
//! a table (or `--json` document) on stdout and always writes the raw
//! measurements to `BENCH_kernels.json` (`--out <path>` overrides), so the
//! committed baseline can be regenerated with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_kernels
//! ```
//!
//! Flags (see `DESIGN.md` §10 for the methodology):
//!
//! * `--reps N` — timed repetitions per kernel after one untimed warm-up;
//!   the best (minimum) wall time is recorded. Defaults to 3 (1 under
//!   `--smoke`).
//! * `--profile` — re-runs each kernel once on the parallel backend with
//!   the per-worker profiler armed and reports busy/idle time, chunk and
//!   item counts per worker, plus the load-imbalance factor.
//! * `--alloc-profile` — re-runs each kernel once, pinned sequential and
//!   warmed up, under the counting global allocator and records the
//!   per-call allocation count, bytes requested, and interval peak heap
//!   (after a peak re-baseline) in an `"alloc"` stanza per kernel row.
//!   `--compare` then gates those columns with the same tolerance (plus a
//!   small absolute slack) when the baseline also carries them. Requires
//!   the `alloc-track` feature (on by default); a build without it exits
//!   `2`.
//! * `--compare BASELINE.json [--tolerance F]` — diffs the fresh run
//!   against a committed baseline per `(kernel, n, channels)` key and
//!   exits `1` if any kernel slowed by more than the tolerance
//!   (default 0.15 = 15%). Mismatched sweeps with zero overlapping keys
//!   exit `2` instead of passing vacuously.
//! * `--trace-out PATH` — installs a process-global telemetry handle so
//!   the kernel-level histogram probes (`math.*`, `ckks.*`) capture
//!   latency distributions, and writes a Chrome/Perfetto trace.
//! * `--live-metrics PATH [--sample-ms N]` — spawns a background
//!   [`telemetry::Sampler`] for the whole run: `PATH` is rewritten
//!   atomically every `N` ms (default 50) with the Prometheus text
//!   exposition of everything recorded so far, and `PATH.jsonl` gains one
//!   JSON line per tick with the interval's increments plus instantaneous
//!   `par.worker.<w>.busy_ns` / `.items` gauges from the armed per-worker
//!   profiler — a plottable utilization time series. The final capture at
//!   shutdown makes the exposition file's cumulative values equal the
//!   exit-time snapshot exactly. Implies an enabled telemetry handle even
//!   without `--trace-out`. Combining with `--profile` makes the worker
//!   gauges per-kernel rather than run-cumulative (each profiled kernel
//!   resets the profiler).
//!
//! * `--checksum` — flips the runtime integrity-checksum toggle *on* for
//!   the timed kernels. Benches run checksum-free by default so committed
//!   baselines measure the production fast path; an A/B pair of runs with
//!   and without this flag bounds the checksum overhead, and the
//!   `--compare` gate confirms the disabled path stays within tolerance.
//! * `--faults SEED[:CASES]` — after the timed sweep, runs a deterministic
//!   fault-injection campaign (all three fault classes, `CASES` cases per
//!   class, default 50) and embeds the per-class detected/escaped
//!   breakdown in the output JSON under `"faults"`. Never affects kernel
//!   timings: the campaign runs after every measurement is taken.
//!
//! `--smoke` shrinks the sweep to one toy size — the CI job uses it with
//! `--compare` to keep the regression gate itself exercised.

use std::time::{Duration, Instant};

use bench::{fmt_time, regress, BenchArgs, Reporter};
use fhe_ckks::{CkksContext, CkksParams, Encoder, Evaluator, RelinKey, SecretKey};
use fhe_math::{generate_ntt_primes, par, Modulus, RnsBasis, RnsContext};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use telemetry::json::Json;

/// Total RNS channels for the raw-kernel sweeps (6 ciphertext + 2 special).
const CHANNELS: usize = 8;
/// Channels in the Modup source digit.
const DIGIT: usize = 3;
/// Special channels for Moddown.
const SPECIALS: usize = 2;

struct Measurement {
    kernel: &'static str,
    n: usize,
    channels: usize,
    seq_s: f64,
    par_s: f64,
    /// Per-worker activity from one profiler-armed parallel run
    /// (`--profile` only).
    profile: Option<par::ParProfile>,
    /// Per-call allocation counts and interval peak heap from one extra
    /// pinned-sequential run (`--alloc-profile` only).
    alloc: Option<regress::AllocPoint>,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.seq_s / self.par_s
    }
}

/// Best of `reps` timed runs of `f`, after one untimed warm-up call.
fn time_reps<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Runs `f` per mode (sequential, then parallel) and returns both best
/// times, plus a per-worker profile from one extra profiler-armed parallel
/// run when `profile` is set and an allocation profile from one extra
/// pinned-sequential run when `alloc_profile` is set. Restores the auto
/// thread budget afterwards.
fn seq_vs_par<F: FnMut()>(
    reps: usize,
    profile: bool,
    alloc_profile: bool,
    mut f: F,
) -> (f64, f64, Option<par::ParProfile>, Option<regress::AllocPoint>) {
    par::set_max_threads(1);
    let seq = time_reps(reps, &mut f);
    par::set_max_threads(0);
    let par_t = time_reps(reps, &mut f);
    let prof = profile.then(|| {
        // Profiled separately from the timed reps so the (relaxed-atomic)
        // bookkeeping never pollutes the recorded wall times.
        par::reset_profile();
        par::set_profiling(true);
        f();
        par::set_profiling(false);
        par::profile_snapshot()
    });
    let alloc = alloc_profile.then(|| {
        // Pinned to one thread so the count is deterministic: worker
        // charge-back makes the parallel totals correct too, but how
        // often per-worker scratch pools re-warm depends on the thread
        // budget. One extra warm-up under the pinned budget first — the
        // timed reps above may have warmed a different pool set.
        par::set_max_threads(1);
        f();
        telemetry::alloc::reset_peak();
        let ((), d) = telemetry::alloc::alloc_delta(&mut f);
        let peak_bytes = telemetry::alloc::global_stats().peak_bytes;
        par::set_max_threads(0);
        regress::AllocPoint { allocs: d.allocs, bytes: d.bytes, peak_bytes }
    });
    (seq, par_t, prof, alloc)
}

/// Deterministic pseudo-random residues for channel `c` of a degree-`n`
/// poly (no RNG dependency in the timing loop).
fn fill(n: usize, c: usize, m: Modulus) -> Vec<u64> {
    (0..n)
        .map(|i| m.reduce((i as u64 ^ (c as u64) << 32).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        .collect()
}

fn rns_kernels(
    n: usize,
    reps: usize,
    profile: bool,
    alloc_profile: bool,
    out: &mut Vec<Measurement>,
) {
    let primes = generate_ntt_primes(50, n, CHANNELS).expect("enough 50-bit NTT primes");
    let moduli: Vec<Modulus> = primes.iter().map(|&q| Modulus::new(q).expect("prime")).collect();
    let ctx = RnsContext::new(n, RnsBasis::new(moduli.clone()).expect("basis")).expect("context");

    // Forward and inverse NTT over all channels, timed as separate kernels
    // (schema v2) so the regression gate catches direction-specific
    // regressions. Both transforms are pure functions of the slice, so
    // repeating one direction back-to-back is valid: `forward` accepts any
    // canonical input and `inverse` accepts `[0, 2q)`.
    let mut bufs: Vec<Vec<u64>> = moduli.iter().enumerate().map(|(c, &m)| fill(n, c, m)).collect();
    let tables = ctx.tables();
    let ntt_work = (n as u64).saturating_mul(u64::from(n.trailing_zeros().max(1)));
    let (seq, par_t, prof, alloc) = seq_vs_par(reps, profile, alloc_profile, || {
        par::par_iter_mut_in(par::WorkClass::Ntt, &mut bufs, ntt_work, |c, b| {
            tables[c].forward(b);
        })
        .expect("ntt");
    });
    out.push(Measurement {
        kernel: "ntt_fwd",
        n,
        channels: CHANNELS,
        seq_s: seq,
        par_s: par_t,
        profile: prof,
        alloc,
    });
    let (seq, par_t, prof, alloc) = seq_vs_par(reps, profile, alloc_profile, || {
        par::par_iter_mut_in(par::WorkClass::Ntt, &mut bufs, ntt_work, |c, b| {
            tables[c].inverse(b);
        })
        .expect("intt");
    });
    out.push(Measurement {
        kernel: "ntt_inv",
        n,
        channels: CHANNELS,
        seq_s: seq,
        par_s: par_t,
        profile: prof,
        alloc,
    });

    // Modup: DIGIT source channels onto the remaining channels.
    let src_idx: Vec<usize> = (0..DIGIT).collect();
    let dst_idx: Vec<usize> = (DIGIT..CHANNELS).collect();
    let plan = ctx.bconv(&src_idx, &dst_idx).expect("plan");
    let src_data: Vec<Vec<u64>> = src_idx.iter().map(|&c| fill(n, c, moduli[c])).collect();
    let src_refs: Vec<&[u64]> = src_data.iter().map(Vec::as_slice).collect();
    let mut modup_out = vec![Vec::new(); dst_idx.len()];
    let (seq, par_t, prof, alloc) = seq_vs_par(reps, profile, alloc_profile, || {
        plan.apply_into(&src_refs, &mut modup_out).expect("modup")
    });
    out.push(Measurement {
        kernel: "modup",
        n,
        channels: dst_idx.len(),
        seq_s: seq,
        par_s: par_t,
        profile: prof,
        alloc,
    });

    // Moddown: CHANNELS-SPECIALS ciphertext channels, SPECIALS specials.
    let q_idx: Vec<usize> = (0..CHANNELS - SPECIALS).collect();
    let p_idx: Vec<usize> = (CHANNELS - SPECIALS..CHANNELS).collect();
    let q_data: Vec<Vec<u64>> = q_idx.iter().map(|&c| fill(n, c, moduli[c])).collect();
    let p_data: Vec<Vec<u64>> = p_idx.iter().map(|&c| fill(n, c, moduli[c])).collect();
    let q_refs: Vec<&[u64]> = q_data.iter().map(Vec::as_slice).collect();
    let p_refs: Vec<&[u64]> = p_data.iter().map(Vec::as_slice).collect();
    let mut moddown_out = vec![Vec::new(); q_idx.len()];
    let (seq, par_t, prof, alloc) = seq_vs_par(reps, profile, alloc_profile, || {
        ctx.moddown_into(&q_refs, &p_refs, &q_idx, &p_idx, &mut moddown_out).expect("moddown");
    });
    out.push(Measurement {
        kernel: "moddown",
        n,
        channels: q_idx.len(),
        seq_s: seq,
        par_s: par_t,
        profile: prof,
        alloc,
    });
}

fn ckks_kernel(
    n: usize,
    reps: usize,
    profile: bool,
    alloc_profile: bool,
    out: &mut Vec<Measurement>,
) {
    // Small chain so setup stays cheap; the kernel under test is the
    // mul + relinearize + rescale pipeline, whose cost scales with n.
    let (max_level, dnum, scale_bits) = if n <= 64 { (2, 2, 26) } else { (3, 2, 36) };
    let params = CkksParams::new(n, max_level, dnum, scale_bits).expect("params");
    let ctx = CkksContext::new(params).expect("context");
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let sk = SecretKey::generate(&ctx, &mut rng).unwrap();
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng).expect("relin key");
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let slots = ctx.n() / 2;
    let values: Vec<f64> = (0..slots).map(|j| ((j % 7) as f64 - 3.0) * 0.25).collect();
    let pt = enc.encode(&values).expect("encode");
    let ca = sk.encrypt(&ctx, &pt, &mut rng).expect("encrypt");
    let cb = sk.encrypt(&ctx, &pt, &mut rng).expect("encrypt");
    let level = ca.level();
    let (seq, par_t, prof, alloc) = seq_vs_par(reps, profile, alloc_profile, || {
        let prod = ev.mul(&ca, &cb, &rlk).expect("mul");
        std::hint::black_box(ev.rescale(&prod).expect("rescale"));
    });
    out.push(Measurement {
        kernel: "ckks_mul_rescale",
        n,
        channels: level + 1,
        seq_s: seq,
        par_s: par_t,
        profile: prof,
        alloc,
    });
}

fn profile_to_json(p: &par::ParProfile) -> Json {
    let mut o = std::collections::BTreeMap::new();
    o.insert(
        "workers".to_string(),
        Json::Arr(
            p.workers
                .iter()
                .map(|w| {
                    let mut wo = std::collections::BTreeMap::new();
                    wo.insert("worker".to_string(), Json::Num(w.worker as f64));
                    wo.insert("busy_ns".to_string(), Json::Num(w.busy_ns as f64));
                    wo.insert("idle_ns".to_string(), Json::Num(p.idle_ns(w) as f64));
                    wo.insert("chunks".to_string(), Json::Num(w.chunks as f64));
                    wo.insert("items".to_string(), Json::Num(w.items as f64));
                    Json::Obj(wo)
                })
                .collect(),
        ),
    );
    o.insert("regions".to_string(), Json::Num(p.regions as f64));
    o.insert("wall_ns".to_string(), Json::Num(p.wall_ns as f64));
    o.insert("imbalance".to_string(), Json::Num(p.imbalance()));
    Json::Obj(o)
}

fn to_json(measurements: &[Measurement], note: &str, reps: usize) -> Json {
    let mut doc = std::collections::BTreeMap::new();
    doc.insert("schema_version".to_string(), Json::Num(2.0));
    doc.insert("git_commit".to_string(), Json::Str(bench::git_commit()));
    let mut host = std::collections::BTreeMap::new();
    host.insert("threads".to_string(), Json::Num(par::max_threads() as f64));
    host.insert("parallel_compiled".to_string(), Json::Bool(par::parallelism_compiled()));
    host.insert("checksum_enabled".to_string(), Json::Bool(fhe_math::checksum_enabled()));
    host.insert(
        "alloc_track_compiled".to_string(),
        Json::Bool(telemetry::alloc::tracking_compiled()),
    );
    if let Some(mb) = bench::mem_total_mb() {
        host.insert("mem_total_mb".to_string(), Json::Num(mb as f64));
    }
    host.insert("reps".to_string(), Json::Num(reps as f64));
    doc.insert("host".to_string(), Json::Obj(host));
    doc.insert("note".to_string(), Json::Str(note.to_string()));
    doc.insert(
        "kernels".to_string(),
        Json::Arr(
            measurements
                .iter()
                .map(|m| {
                    let mut o = std::collections::BTreeMap::new();
                    o.insert("kernel".to_string(), Json::Str(m.kernel.to_string()));
                    o.insert("n".to_string(), Json::Num(m.n as f64));
                    o.insert("channels".to_string(), Json::Num(m.channels as f64));
                    o.insert("seq_s".to_string(), Json::Num(m.seq_s));
                    o.insert("par_s".to_string(), Json::Num(m.par_s));
                    o.insert("speedup".to_string(), Json::Num(m.speedup()));
                    if let Some(p) = &m.profile {
                        o.insert("profile".to_string(), profile_to_json(p));
                    }
                    if let Some(a) = &m.alloc {
                        let mut ao = std::collections::BTreeMap::new();
                        ao.insert("allocs".to_string(), Json::Num(a.allocs as f64));
                        ao.insert("bytes".to_string(), Json::Num(a.bytes as f64));
                        ao.insert("peak_bytes".to_string(), Json::Num(a.peak_bytes as f64));
                        o.insert("alloc".to_string(), Json::Obj(ao));
                    }
                    Json::Obj(o)
                })
                .collect(),
        ),
    );
    Json::Obj(doc)
}

/// Parses `--flag <value>` out of the positional rest, with a typed error.
fn take_value_flag(rest: &[String], flag: &str) -> Option<String> {
    rest.iter().position(|a| a == flag).map(|i| {
        rest.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value argument");
            std::process::exit(2);
        })
    })
}

/// Parses `--faults SEED[:CASES]` (seed decimal or `0x…` hex).
fn parse_faults_spec(spec: &str) -> (u64, u64) {
    let (seed_s, cases_s) = match spec.split_once(':') {
        Some((s, c)) => (s, Some(c)),
        None => (spec, None),
    };
    let parse_u64 = |s: &str| -> Option<u64> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            u64::from_str_radix(&hex.replace('_', ""), 16).ok()
        } else {
            s.replace('_', "").parse().ok()
        }
    };
    let seed = parse_u64(seed_s).unwrap_or_else(|| {
        eprintln!("--faults: invalid seed {seed_s:?} (expected decimal or 0x-hex)");
        std::process::exit(2);
    });
    let cases = match cases_s {
        None => 50,
        Some(c) => parse_u64(c).filter(|n| *n >= 1).unwrap_or_else(|| {
            eprintln!("--faults: invalid case count {c:?}");
            std::process::exit(2);
        }),
    };
    (seed, cases)
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.rest.iter().any(|a| a == "--smoke");
    let profile = args.rest.iter().any(|a| a == "--profile");
    let alloc_profile = args.rest.iter().any(|a| a == "--alloc-profile");
    if alloc_profile && !telemetry::alloc::tracking_compiled() {
        eprintln!(
            "--alloc-profile: the alloc-track feature is not compiled in (built with \
             --no-default-features?); rebuild with the default features to count allocations"
        );
        std::process::exit(2);
    }
    // Benches measure the checksum-free fast path unless explicitly asked
    // to bound the overhead of the enabled path.
    let checksum = args.rest.iter().any(|a| a == "--checksum");
    fhe_math::set_checksum_enabled(checksum);
    if checksum && !fhe_math::checksum_enabled() {
        eprintln!(
            "--checksum: the integrity-checksum feature is not compiled in; \
             rebuild with `-p bench --features integrity-checksum` to measure its overhead"
        );
        std::process::exit(2);
    }
    let faults = take_value_flag(&args.rest, "--faults").map(|s| parse_faults_spec(&s));
    let out_path =
        take_value_flag(&args.rest, "--out").unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let compare_path = take_value_flag(&args.rest, "--compare");
    let tolerance = take_value_flag(&args.rest, "--tolerance")
        .map(|s| {
            s.parse::<f64>().ok().filter(|t| *t >= 0.0).unwrap_or_else(|| {
                eprintln!("--tolerance must be a non-negative number, got {s:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.15);
    let reps = take_value_flag(&args.rest, "--reps")
        .map(|s| {
            s.parse::<usize>().ok().filter(|r| *r >= 1).unwrap_or_else(|| {
                eprintln!("--reps must be a positive integer, got {s:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(if smoke { 1 } else { 3 });
    let live_metrics = take_value_flag(&args.rest, "--live-metrics");
    let sample_ms = take_value_flag(&args.rest, "--sample-ms")
        .map(|s| {
            s.parse::<u64>().ok().filter(|ms| *ms >= 1).unwrap_or_else(|| {
                eprintln!("--sample-ms must be a positive integer, got {s:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(50);
    let mut rep = Reporter::from_args(&args);

    // With --trace-out the handle is installed process-globally so the
    // histogram-only Timer probes inside fhe-math / fhe-ckks feed per-
    // kernel latency distributions into the exported snapshot.
    // --live-metrics needs the same enabled handle even without a trace.
    let tel = if live_metrics.is_some() && args.trace_out.is_none() {
        telemetry::Telemetry::enabled()
    } else {
        bench::telemetry_from_args(&args)
    };
    if tel.is_enabled() {
        telemetry::install(tel.clone());
        tel.set_meta("bench.reps", &reps.to_string());
        tel.set_meta("bench.smoke", &smoke.to_string());
    }

    let sampler = live_metrics.as_ref().map(|path| {
        // The per-worker gauges read the relaxed-atomic profiler, so it
        // stays armed for the whole run (unlike --profile's one-shot
        // snapshots, which reset it per kernel).
        par::reset_profile();
        par::set_profiling(true);
        let jsonl_path = format!("{path}.jsonl");
        let jsonl = telemetry::JsonlSink::create(&jsonl_path).unwrap_or_else(|e| {
            eprintln!("--live-metrics: cannot create {jsonl_path}: {e}");
            std::process::exit(1);
        });
        telemetry::SamplerBuilder::new(tel.clone(), Duration::from_millis(sample_ms))
            .sink(telemetry::PrometheusSink::new(path.clone()))
            .sink(jsonl)
            .gauge_source(Box::new(|readings: &mut Vec<(String, u64)>| {
                let prof = par::profile_snapshot();
                for w in &prof.workers {
                    readings.push((format!("par.worker.{}.busy_ns", w.worker), w.busy_ns));
                    readings.push((format!("par.worker.{}.items", w.worker), w.items));
                }
            }))
            .spawn()
    });

    // The smoke size is part of the full sweep so a `--smoke --compare`
    // run always overlaps a full-sweep baseline on every kernel key.
    let sizes: Vec<usize> = if smoke {
        vec![1 << 8]
    } else {
        std::iter::once(1 << 8).chain((12..=16).map(|k| 1 << k)).collect()
    };

    let mut measurements = Vec::new();
    for &n in &sizes {
        if !rep.is_json() {
            println!("measuring n = {n}...");
        }
        rns_kernels(n, reps, profile, alloc_profile, &mut measurements);
        // CKKS at every size would dominate the run; sample the endpoints.
        if n == sizes[0] || n == *sizes.last().expect("nonempty") {
            ckks_kernel(n, reps, profile, alloc_profile, &mut measurements);
        }
    }
    par::set_max_threads(0);

    // `host.threads` below is stamped from this same value: the effective
    // runtime thread budget (ALCHEMIST_NUM_THREADS or one per core), not a
    // compile-time constant. The single-core caveat is only emitted when it
    // actually applies, so regenerating on a multi-core host drops it.
    let threads = par::max_threads();
    let single_core_caveat = if threads == 1 {
        " On this single-thread host the two columns coincide because the \
         backend runs inline; re-run on a 4+-core machine to reproduce the \
         multi-channel speedup."
    } else {
        ""
    };
    let note = format!(
        "best-of-{reps} wall times on a {threads}-thread host \
         (parallel feature compiled: {}, simd backend: {}); sequential pins \
         the backend to one thread, parallel uses one worker per \
         core.{single_core_caveat}",
        par::parallelism_compiled(),
        fhe_math::simd::active_backend().name(),
    );

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.kernel.to_string(),
                m.n.to_string(),
                m.channels.to_string(),
                fmt_time(m.seq_s),
                fmt_time(m.par_s),
                format!("{:.2}x", m.speedup()),
            ]
        })
        .collect();
    rep.table(
        "Kernel baselines: sequential vs parallel backend",
        &["kernel", "n", "channels", "sequential", "parallel", "speedup"],
        &rows,
    );
    rep.note(&note);

    if profile {
        report_profiles(&mut rep, &tel, &measurements);
    }
    if alloc_profile {
        report_alloc_profiles(&mut rep, &measurements);
    }

    let mut doc = to_json(&measurements, &note, reps);

    // The fault campaign runs strictly after the timed sweep so injection
    // bookkeeping can never perturb a measurement; its breakdown rides
    // along in the same JSON document (and telemetry named counters).
    if let Some((seed, cases)) = faults {
        let report = faultsim::run_campaign(seed, cases, &tel);
        rep.note(&format!(
            "fault campaign (seed {seed:#018x}, {cases} cases/class, checksum {}): \
             {} injected, {} escaped (escape rate {:.4})",
            if fhe_math::checksum_enabled() { "on" } else { "off" },
            report.injected(),
            report.escaped(),
            report.escape_rate(),
        ));
        let campaign = telemetry::json::parse(&report.to_json())
            .expect("campaign report serializes to valid JSON");
        if let Json::Obj(map) = &mut doc {
            map.insert("faults".to_string(), campaign);
        }
    }

    if let Err(e) = std::fs::write(&out_path, format!("{doc}\n")) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    if !rep.is_json() {
        println!("wrote {out_path}");
    }

    let mut regressed = false;
    if let Some(bpath) = compare_path {
        regressed = run_compare(&mut rep, &measurements, &bpath, tolerance);
    }

    // Stop after every recording site has run: the sampler's final capture
    // makes the exposition file match the exit-time snapshot exactly.
    if let Some(sampler) = sampler {
        par::set_profiling(false);
        let stats = sampler.stop();
        let path = live_metrics.as_deref().unwrap_or_default();
        rep.note(&format!(
            "live metrics: {} samples at {sample_ms} ms ({} sink errors) -> {path} + {path}.jsonl",
            stats.ticks, stats.sink_errors,
        ));
    }

    rep.finish();
    if let Some(path) = &args.trace_out {
        bench::write_trace(&tel, path);
    }
    if regressed {
        std::process::exit(1);
    }
}

/// Renders the per-worker utilization tables and feeds the busy-time
/// distribution into the telemetry snapshot (one histogram per kernel, so
/// imbalance shows up as p99/p50 spread in the exports).
fn report_profiles(rep: &mut Reporter, tel: &telemetry::Telemetry, measurements: &[Measurement]) {
    for m in measurements {
        let Some(p) = &m.profile else { continue };
        let rows: Vec<Vec<String>> = p
            .workers
            .iter()
            .map(|w| {
                vec![
                    w.worker.to_string(),
                    fmt_time(w.busy_ns as f64 * 1e-9),
                    fmt_time(p.idle_ns(w) as f64 * 1e-9),
                    w.chunks.to_string(),
                    w.items.to_string(),
                ]
            })
            .collect();
        rep.table(
            &format!("Worker profile: {} n={} ({} parallel regions)", m.kernel, m.n, p.regions),
            &["worker", "busy", "idle", "chunks", "items"],
            &rows,
        );
        rep.note(&format!(
            "{} n={}: {} workers, imbalance {:.2} (max busy / mean busy), wall {}",
            m.kernel,
            m.n,
            p.workers.len(),
            p.imbalance(),
            fmt_time(p.wall_ns as f64 * 1e-9),
        ));
        if tel.is_enabled() {
            for w in &p.workers {
                tel.observe_ns(&format!("par.worker_busy.{}", m.kernel), w.busy_ns);
            }
            tel.set_meta(
                &format!("par.imbalance.{}.n{}", m.kernel, m.n),
                &format!("{:.3}", p.imbalance()),
            );
        }
    }
}

/// Renders the per-kernel allocation table (`--alloc-profile`).
fn report_alloc_profiles(rep: &mut Reporter, measurements: &[Measurement]) {
    let rows: Vec<Vec<String>> = measurements
        .iter()
        .filter_map(|m| {
            m.alloc.map(|a| {
                vec![
                    m.kernel.to_string(),
                    m.n.to_string(),
                    m.channels.to_string(),
                    a.allocs.to_string(),
                    fmt_bytes(a.bytes),
                    fmt_bytes(a.peak_bytes),
                ]
            })
        })
        .collect();
    rep.table(
        "Allocation profile: one warmed-up sequential call per kernel",
        &["kernel", "n", "channels", "allocs", "bytes", "peak heap"],
        &rows,
    );
    rep.note(
        "allocs/bytes are heap requests attributed to the calling thread for one \
         steady-state call; peak heap is the process-wide high-water mark over that \
         call after a re-baseline (so it includes the buffers the call touched, not \
         history).",
    );
}

/// Formats a byte count with a binary-prefix unit.
fn fmt_bytes(b: u64) -> String {
    match b {
        0..=1023 => format!("{b} B"),
        1024..=1048575 => format!("{:.1} KiB", b as f64 / 1024.0),
        1048576..=1073741823 => format!("{:.1} MiB", b as f64 / 1048576.0),
        _ => format!("{:.2} GiB", b as f64 / 1073741824.0),
    }
}

/// Diffs the fresh measurements against `baseline_path` and renders the
/// delta table. Returns whether any kernel regressed beyond `tolerance`.
fn run_compare(
    rep: &mut Reporter,
    measurements: &[Measurement],
    baseline_path: &str,
    tolerance: f64,
) -> bool {
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("failed to read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let doc = telemetry::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("baseline {baseline_path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let baseline = regress::parse_baseline(&doc).unwrap_or_else(|e| {
        eprintln!("baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    // Comparing runs from incomparable hosts silently is how stale
    // baselines sneak through review: warn loudly on stderr AND in the
    // report header, but still diff (the numbers can be informative).
    let host_warnings = regress::host_mismatch_warnings(
        &regress::parse_host(&doc),
        par::max_threads() as u64,
        par::parallelism_compiled(),
        bench::mem_total_mb(),
    );
    for w in &host_warnings {
        eprintln!("WARNING: {w}");
        rep.note(&format!("WARNING: {w}"));
    }
    let fresh: Vec<regress::KernelPoint> = measurements
        .iter()
        .map(|m| regress::KernelPoint {
            kernel: m.kernel.to_string(),
            n: m.n as u64,
            channels: m.channels as u64,
            seq_s: m.seq_s,
            par_s: m.par_s,
            alloc: m.alloc,
        })
        .collect();
    let report = regress::compare(&fresh, &baseline, tolerance).unwrap_or_else(|e| {
        eprintln!("cannot compare against {baseline_path}: {e}");
        std::process::exit(2);
    });

    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.n.to_string(),
                r.channels.to_string(),
                fmt_time(r.base.1),
                fmt_time(r.fresh.1),
                format!("{:.2}", r.ratio.0),
                format!("{:.2}", r.ratio.1),
                r.alloc_ratio.map_or_else(|| "-".to_string(), |a| format!("{a:.2}")),
                if r.regressed { "REGRESSED".to_string() } else { "ok".to_string() },
            ]
        })
        .collect();
    let mismatch_tag = if host_warnings.is_empty() { "" } else { " [HOST MISMATCH]" };
    rep.table(
        &format!(
            "Regression gate vs {baseline_path} (tolerance {:.0}%){mismatch_tag}",
            tolerance * 100.0
        ),
        &[
            "kernel",
            "n",
            "channels",
            "base par",
            "fresh par",
            "seq ratio",
            "par ratio",
            "alloc ratio",
            "status",
        ],
        &rows,
    );
    let n_reg = report.regressions();
    rep.note(&format!(
        "{} of {} overlapping keys regressed beyond {:.0}% \
         ({} fresh-only, {} baseline-only keys not gated).",
        n_reg,
        report.rows.len(),
        tolerance * 100.0,
        report.fresh_only,
        report.base_only,
    ));
    n_reg > 0
}
