//! Reproducible sequential-vs-parallel baseline for the hot kernels the
//! `parallel` feature accelerates: RNS NTT round-trips, Modup, Moddown and
//! the CKKS mul+rescale pipeline.
//!
//! Both modes run in the same process: the sequential column pins the
//! backend to one thread with [`fhe_math::par::set_max_threads`]`(1)`, the
//! parallel column restores the auto budget (one worker per core). Outputs
//! a table (or `--json` document) on stdout and always writes the raw
//! measurements to `BENCH_kernels.json` (`--out <path>` overrides), so the
//! committed baseline can be regenerated with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_kernels
//! ```
//!
//! `--smoke` shrinks the sweep to one toy size with one iteration — the CI
//! job uses it to prove the binary stays runnable, not to measure.

use std::time::Instant;

use bench::{fmt_time, BenchArgs, Reporter};
use fhe_ckks::{CkksContext, CkksParams, Encoder, Evaluator, RelinKey, SecretKey};
use fhe_math::{generate_ntt_primes, par, Modulus, Poly, RnsBasis, RnsContext, RnsPoly};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use telemetry::json::Json;

/// Total RNS channels for the raw-kernel sweeps (6 ciphertext + 2 special).
const CHANNELS: usize = 8;
/// Channels in the Modup source digit.
const DIGIT: usize = 3;
/// Special channels for Moddown.
const SPECIALS: usize = 2;

struct Measurement {
    kernel: &'static str,
    n: usize,
    channels: usize,
    seq_s: f64,
    par_s: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.seq_s / self.par_s
    }
}

/// Best-of-`iters` wall time of `f`, with one untimed warm-up call.
fn time_best<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Runs `f` once per mode (sequential, then parallel) and returns both
/// best times. Restores the auto thread budget afterwards.
fn seq_vs_par<F: FnMut()>(iters: usize, mut f: F) -> (f64, f64) {
    par::set_max_threads(1);
    let seq = time_best(iters, &mut f);
    par::set_max_threads(0);
    let par_t = time_best(iters, &mut f);
    (seq, par_t)
}

/// Deterministic pseudo-random residues for channel `c` of a degree-`n`
/// poly (no RNG dependency in the timing loop).
fn fill(n: usize, c: usize, m: Modulus) -> Vec<u64> {
    (0..n)
        .map(|i| m.reduce((i as u64 ^ (c as u64) << 32).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        .collect()
}

fn rns_kernels(n: usize, iters: usize, out: &mut Vec<Measurement>) {
    let primes = generate_ntt_primes(50, n, CHANNELS).expect("enough 50-bit NTT primes");
    let moduli: Vec<Modulus> = primes.iter().map(|&q| Modulus::new(q).expect("prime")).collect();
    let ctx = RnsContext::new(n, RnsBasis::new(moduli.clone()).expect("basis")).expect("context");

    // NTT round-trip over all channels.
    let channels: Vec<Poly> = moduli
        .iter()
        .enumerate()
        .map(|(c, &m)| Poly::from_coeffs(fill(n, c, m), m).expect("canonical"))
        .collect();
    let mut poly = RnsPoly::from_channels(channels).expect("rns poly");
    let (seq, par_t) = seq_vs_par(iters, || {
        poly.to_ntt(ctx.tables());
        poly.to_coeff(ctx.tables());
    });
    out.push(Measurement {
        kernel: "ntt_roundtrip",
        n,
        channels: CHANNELS,
        seq_s: seq,
        par_s: par_t,
    });

    // Modup: DIGIT source channels onto the remaining channels.
    let src_idx: Vec<usize> = (0..DIGIT).collect();
    let dst_idx: Vec<usize> = (DIGIT..CHANNELS).collect();
    let plan = ctx.bconv(&src_idx, &dst_idx).expect("plan");
    let src_data: Vec<Vec<u64>> = src_idx.iter().map(|&c| fill(n, c, moduli[c])).collect();
    let src_refs: Vec<&[u64]> = src_data.iter().map(Vec::as_slice).collect();
    let mut modup_out = vec![Vec::new(); dst_idx.len()];
    let (seq, par_t) = seq_vs_par(iters, || plan.apply_into(&src_refs, &mut modup_out));
    out.push(Measurement { kernel: "modup", n, channels: dst_idx.len(), seq_s: seq, par_s: par_t });

    // Moddown: CHANNELS-SPECIALS ciphertext channels, SPECIALS specials.
    let q_idx: Vec<usize> = (0..CHANNELS - SPECIALS).collect();
    let p_idx: Vec<usize> = (CHANNELS - SPECIALS..CHANNELS).collect();
    let q_data: Vec<Vec<u64>> = q_idx.iter().map(|&c| fill(n, c, moduli[c])).collect();
    let p_data: Vec<Vec<u64>> = p_idx.iter().map(|&c| fill(n, c, moduli[c])).collect();
    let q_refs: Vec<&[u64]> = q_data.iter().map(Vec::as_slice).collect();
    let p_refs: Vec<&[u64]> = p_data.iter().map(Vec::as_slice).collect();
    let mut moddown_out = vec![Vec::new(); q_idx.len()];
    let (seq, par_t) = seq_vs_par(iters, || {
        ctx.moddown_into(&q_refs, &p_refs, &q_idx, &p_idx, &mut moddown_out).expect("moddown");
    });
    out.push(Measurement { kernel: "moddown", n, channels: q_idx.len(), seq_s: seq, par_s: par_t });
}

fn ckks_kernel(n: usize, iters: usize, out: &mut Vec<Measurement>) {
    // Small chain so setup stays cheap; the kernel under test is the
    // mul + relinearize + rescale pipeline, whose cost scales with n.
    let (max_level, dnum, scale_bits) = if n <= 64 { (2, 2, 26) } else { (3, 2, 36) };
    let params = CkksParams::new(n, max_level, dnum, scale_bits).expect("params");
    let ctx = CkksContext::new(params).expect("context");
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng).expect("relin key");
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let slots = ctx.n() / 2;
    let values: Vec<f64> = (0..slots).map(|j| ((j % 7) as f64 - 3.0) * 0.25).collect();
    let pt = enc.encode(&values).expect("encode");
    let ca = sk.encrypt(&ctx, &pt, &mut rng).expect("encrypt");
    let cb = sk.encrypt(&ctx, &pt, &mut rng).expect("encrypt");
    let level = ca.level();
    let (seq, par_t) = seq_vs_par(iters, || {
        let prod = ev.mul(&ca, &cb, &rlk).expect("mul");
        std::hint::black_box(ev.rescale(&prod).expect("rescale"));
    });
    out.push(Measurement {
        kernel: "ckks_mul_rescale",
        n,
        channels: level + 1,
        seq_s: seq,
        par_s: par_t,
    });
}

fn to_json(measurements: &[Measurement], note: &str) -> Json {
    let mut doc = std::collections::BTreeMap::new();
    let mut host = std::collections::BTreeMap::new();
    host.insert("threads".to_string(), Json::Num(par::max_threads() as f64));
    host.insert("parallel_compiled".to_string(), Json::Bool(par::parallelism_compiled()));
    doc.insert("host".to_string(), Json::Obj(host));
    doc.insert("note".to_string(), Json::Str(note.to_string()));
    doc.insert(
        "kernels".to_string(),
        Json::Arr(
            measurements
                .iter()
                .map(|m| {
                    let mut o = std::collections::BTreeMap::new();
                    o.insert("kernel".to_string(), Json::Str(m.kernel.to_string()));
                    o.insert("n".to_string(), Json::Num(m.n as f64));
                    o.insert("channels".to_string(), Json::Num(m.channels as f64));
                    o.insert("seq_s".to_string(), Json::Num(m.seq_s));
                    o.insert("par_s".to_string(), Json::Num(m.par_s));
                    o.insert("speedup".to_string(), Json::Num(m.speedup()));
                    Json::Obj(o)
                })
                .collect(),
        ),
    );
    Json::Obj(doc)
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.rest.iter().any(|a| a == "--smoke");
    let out_path = args
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.rest.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let mut rep = Reporter::from_args(&args);

    let (sizes, iters): (Vec<usize>, usize) =
        if smoke { (vec![1 << 8], 1) } else { ((12..=16).map(|k| 1usize << k).collect(), 3) };

    let mut measurements = Vec::new();
    for &n in &sizes {
        if !rep.is_json() {
            println!("measuring n = {n}...");
        }
        rns_kernels(n, iters, &mut measurements);
        // CKKS at every size would dominate the run; sample the endpoints.
        if smoke || n == sizes[0] || n == *sizes.last().expect("nonempty") {
            ckks_kernel(if smoke { 64 } else { n }, iters, &mut measurements);
        }
    }
    par::set_max_threads(0);

    let threads = par::max_threads();
    let note = format!(
        "best-of-{iters} wall times on a {threads}-thread host \
         (parallel feature compiled: {}); sequential pins the backend to one \
         thread, parallel uses one worker per core. On a single-core host the \
         two columns coincide because the backend runs inline; re-run on a \
         4+-core machine to reproduce the multi-channel speedup.",
        par::parallelism_compiled()
    );

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.kernel.to_string(),
                m.n.to_string(),
                m.channels.to_string(),
                fmt_time(m.seq_s),
                fmt_time(m.par_s),
                format!("{:.2}x", m.speedup()),
            ]
        })
        .collect();
    rep.table(
        "Kernel baselines: sequential vs parallel backend",
        &["kernel", "n", "channels", "sequential", "parallel", "speedup"],
        &rows,
    );
    rep.note(&note);

    let doc = to_json(&measurements, &note);
    if let Err(e) = std::fs::write(&out_path, format!("{doc}\n")) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    if !rep.is_json() {
        println!("wrote {out_path}");
    }
    rep.finish();
}
