//! Regenerates **Tables 2 and 3**: multiplication counts of
//! `DecompPolyMult` and `Modup` before and after the Meta-OP
//! transformation, swept over the paper's parameter ranges.

use bench::{BenchArgs, Reporter};
use metaop::counts::{bconv_counts, decomp_poly_mult_counts, ntt_counts};

fn main() {
    let mut rep = Reporter::from_args(&BenchArgs::parse());
    let n = 1u64 << 16;
    let rows: Vec<Vec<String>> = (1..=6)
        .map(|dnum| {
            let c = decomp_poly_mult_counts(dnum, n);
            vec![
                format!("dnum={dnum}"),
                format!("3*dnum*N = {}", c.original),
                format!("(dnum+2)*N = {}", c.meta),
                format!("{:.2}x fewer", c.original as f64 / c.meta as f64),
            ]
        })
        .collect();
    rep.table(
        "Table 2: DecompPolyMult transformation (per output channel, N = 2^16)",
        &["Config", "Origin #Mults", "Meta-OP #Mults", "Saving"],
        &rows,
    );

    let rows: Vec<Vec<String>> = [(2u64, 2u64), (7, 25), (12, 45), (12, 57), (23, 45)]
        .iter()
        .map(|&(l, k)| {
            let c = bconv_counts(l, k, n);
            vec![
                format!("L={l}, K={k}"),
                format!("(3KL+3L)*N = {}", c.original),
                format!("(KL+3L+2K)*N = {}", c.meta),
                format!("{:.2}x fewer", c.original as f64 / c.meta as f64),
            ]
        })
        .collect();
    rep.table(
        "Table 3: Modup transformation (per polynomial, N = 2^16)",
        &["Config", "Origin #Mults", "Meta-OP #Mults", "Saving"],
        &rows,
    );

    let rows: Vec<Vec<String>> = (10..=16)
        .map(|log| {
            let c = ntt_counts(1 << log);
            vec![
                format!("N=2^{log}"),
                c.original.to_string(),
                c.meta.to_string(),
                format!("{:+.1}%", c.change_pct()),
            ]
        })
        .collect();
    rep.table(
        "NTT penalty check (paper section 4.2: 'only a 10% multiplication increase'):",
        &["Size", "Origin #Mults", "Meta-OP #Mults", "Change"],
        &rows,
    );
    rep.finish();
}
