//! Regenerates **Table 5**: area breakdown of Alchemist (14 nm).

use alchemist_core::{ArchConfig, AreaModel};

fn main() {
    let model = AreaModel::new(ArchConfig::paper());
    println!("Table 5: Area breakdown of Alchemist (14 nm)\n");
    let rows: Vec<Vec<String>> = model
        .breakdown()
        .into_iter()
        .map(|(label, qty, unit, total)| {
            vec![
                label,
                if qty > 1 { format!("{qty} x {unit:.3}") } else { format!("{unit:.3}") },
                format!("{total:.3}"),
            ]
        })
        .collect();
    bench::print_table(&["Component", "Area (mm2 each)", "Total (mm2)"], &rows);
    println!(
        "\nPaper total: 181.086 mm2; model total: {:.3} mm2; average power: {:.1} W (paper: 77.9 W)",
        model.total_mm2(),
        model.average_power_w()
    );
}
