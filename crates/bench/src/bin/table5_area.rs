//! Regenerates **Table 5**: area breakdown of Alchemist (14 nm).

use alchemist_core::{ArchConfig, AreaModel};
use bench::{BenchArgs, Reporter};

fn main() {
    let mut rep = Reporter::from_args(&BenchArgs::parse());
    let model = AreaModel::new(ArchConfig::paper());
    let rows: Vec<Vec<String>> = model
        .breakdown()
        .into_iter()
        .map(|(label, qty, unit, total)| {
            vec![
                label,
                if qty > 1 { format!("{qty} x {unit:.3}") } else { format!("{unit:.3}") },
                format!("{total:.3}"),
            ]
        })
        .collect();
    rep.table(
        "Table 5: Area breakdown of Alchemist (14 nm)",
        &["Component", "Area (mm2 each)", "Total (mm2)"],
        &rows,
    );
    rep.note(&format!(
        "Paper total: 181.086 mm2; model total: {:.3} mm2; average power: {:.1} W (paper: 77.9 W)",
        model.total_mm2(),
        model.average_power_w()
    ));
    rep.finish();
}
