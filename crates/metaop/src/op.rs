//! Meta-OP descriptors, access patterns and execution traces.

use std::fmt;

/// The three data access patterns a Meta-OP consumes (paper Table 4).
///
/// | computation      | pattern      |
/// |------------------|--------------|
/// | (I)NTT           | `Slots`      |
/// | `DecompPolyMult` | `DnumGroup`  |
/// | `Modup/down`     | `Channel`    |
///
/// With Alchemist's slot-based partitioning every pattern resolves inside a
/// computing unit's private scratchpad, which is what lets the 128 units run
/// without inter-unit traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AccessPattern {
    /// Contiguous slots of one polynomial (NTT butterflies after 4-step
    /// decomposition).
    Slots,
    /// The same slot across all RNS channels (base conversion).
    Channel,
    /// The same slot and channel across all decomposition digits
    /// (`DecompPolyMult` accumulation).
    DnumGroup,
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessPattern::Slots => "slots",
            AccessPattern::Channel => "channel",
            AccessPattern::DnumGroup => "dnum_group",
        };
        f.write_str(s)
    }
}

/// Which high-level operator family a Meta-OP was lowered from. Used by the
/// simulator's utilization breakdown (paper Fig. 7b reports utilization per
/// class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum OpClass {
    /// Forward or inverse NTT butterfly work.
    Ntt,
    /// RNS base conversion (`Bconv`, and the conversions inside
    /// `Modup`/`Moddown`).
    Bconv,
    /// Decomposed polynomial × evaluation-key accumulation.
    DecompPolyMult,
    /// Element-wise multiply/add/scale work that maps onto `(M_j A_j)_1 R_j`.
    Elementwise,
    /// Pure data movement (HBM↔scratchpad staging) with no arithmetic: the
    /// simulator's prefetch/writeback steps. Never appears in a
    /// [`MetaOpTrace`]; it exists so data movement is not mislabeled as
    /// element-wise compute in utilization breakdowns.
    Transfer,
}

impl OpClass {
    /// The canonical access pattern of this operator family (paper Table 4;
    /// transfers stream contiguous slots).
    pub fn access_pattern(self) -> AccessPattern {
        match self {
            OpClass::Ntt => AccessPattern::Slots,
            OpClass::Bconv => AccessPattern::Channel,
            OpClass::DecompPolyMult => AccessPattern::DnumGroup,
            OpClass::Elementwise => AccessPattern::Slots,
            OpClass::Transfer => AccessPattern::Slots,
        }
    }

    /// All classes, in display order.
    pub fn all() -> [OpClass; 5] {
        [
            OpClass::Ntt,
            OpClass::Bconv,
            OpClass::DecompPolyMult,
            OpClass::Elementwise,
            OpClass::Transfer,
        ]
    }

    /// The telemetry counter key for this class.
    pub fn telemetry_key(self) -> telemetry::OpClassKey {
        match self {
            OpClass::Ntt => telemetry::OpClassKey::Ntt,
            OpClass::Bconv => telemetry::OpClassKey::Bconv,
            OpClass::DecompPolyMult => telemetry::OpClassKey::DecompPolyMult,
            OpClass::Elementwise => telemetry::OpClassKey::Elementwise,
            OpClass::Transfer => telemetry::OpClassKey::Transfer,
        }
    }
}

impl From<OpClass> for telemetry::OpClassKey {
    fn from(class: OpClass) -> Self {
        class.telemetry_key()
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Ntt => "ntt",
            OpClass::Bconv => "bconv",
            OpClass::DecompPolyMult => "decomp_poly_mult",
            OpClass::Elementwise => "elementwise",
            OpClass::Transfer => "transfer",
        };
        f.write_str(s)
    }
}

/// One `(M_j A_j)_n R_j` Meta-OP instance.
///
/// # Example
///
/// ```
/// use metaop::{MetaOp, OpClass};
/// let op = MetaOp::new(OpClass::Bconv, 8, 44); // Bconv dot product over L = 44
/// assert_eq!(op.cycles(), 46);                 // n + 2
/// assert_eq!(op.mults(), 8 * 46);              // j·n lane mults + 2j reduction mults
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct MetaOp {
    class: OpClass,
    j: u32,
    n: u32,
}

impl MetaOp {
    /// Creates a Meta-OP descriptor with `j` lanes iterated `n` times.
    ///
    /// # Panics
    ///
    /// Panics if `j == 0` or `n == 0`.
    pub fn new(class: OpClass, j: u32, n: u32) -> Self {
        assert!(j > 0 && n > 0, "Meta-OP dimensions must be positive");
        MetaOp { class, j, n }
    }

    /// The operator family this op was lowered from.
    #[inline]
    pub fn class(&self) -> OpClass {
        self.class
    }

    /// Lane parallelism `j` (8 on the Alchemist core).
    #[inline]
    pub fn j(&self) -> u32 {
        self.j
    }

    /// Iteration count `n` (the dynamic runtime parameter).
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Cycles on the unified core: `n` multiply-accumulate cycles plus two
    /// reduction cycles on the reused multiplier array (paper §5.2).
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.n as u64 + 2
    }

    /// Word multiplications consumed: `j` per MA cycle plus `2j` for the
    /// Barrett reduction.
    #[inline]
    pub fn mults(&self) -> u64 {
        self.j as u64 * (self.n as u64 + 2)
    }

    /// The access pattern this op requires of the data management layer.
    #[inline]
    pub fn access_pattern(&self) -> AccessPattern {
        self.class.access_pattern()
    }
}

/// An aggregated trace of Meta-OPs: `(descriptor, repetition count)` pairs.
///
/// Lowerings append to a trace as they execute; the simulator replays traces
/// onto the core pipeline, and the accounting layer reads totals off them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaOpTrace {
    entries: Vec<(MetaOp, u64)>,
}

impl MetaOpTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` repetitions of `op`, merging with the previous entry
    /// when identical (keeps traces compact for big lowerings).
    pub fn record(&mut self, op: MetaOp, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(last) = self.entries.last_mut() {
            if last.0 == op {
                last.1 += count;
                return;
            }
        }
        self.entries.push((op, count));
    }

    /// Appends another trace.
    pub fn extend_from(&mut self, other: &MetaOpTrace) {
        for &(op, count) in &other.entries {
            self.record(op, count);
        }
    }

    /// The recorded `(op, count)` entries in order.
    #[inline]
    pub fn entries(&self) -> &[(MetaOp, u64)] {
        &self.entries
    }

    /// Total number of Meta-OP instances.
    pub fn total_ops(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }

    /// Total single-core cycles if executed back to back.
    pub fn total_cycles(&self) -> u64 {
        self.entries.iter().map(|&(op, c)| op.cycles() * c).sum()
    }

    /// Total word multiplications.
    pub fn total_mults(&self) -> u64 {
        self.entries.iter().map(|&(op, c)| op.mults() * c).sum()
    }

    /// Cycles restricted to one operator class.
    pub fn cycles_for(&self, class: OpClass) -> u64 {
        self.entries
            .iter()
            .filter(|(op, _)| op.class() == class)
            .map(|&(op, c)| op.cycles() * c)
            .sum()
    }

    /// Fraction of cycles spent per class, in [`OpClass::all`] order.
    pub fn class_mix(&self) -> [(OpClass, f64); 5] {
        let total = self.total_cycles().max(1) as f64;
        OpClass::all().map(|c| (c, self.cycles_for(c) as f64 / total))
    }

    /// Reduction cycles the lazy Barrett accumulation avoided, relative to
    /// eagerly reducing every product: `2(n-1)` per `(M_j A_j)_n R_j`
    /// instance (eager `3n` vs lazy `n + 2` multiplier-array cycles).
    pub fn reduction_cycles_saved(&self) -> u64 {
        self.entries.iter().map(|&(op, c)| 2 * (op.n() as u64 - 1) * c).sum()
    }

    /// Flushes this trace's totals into telemetry counters: Meta-OPs
    /// issued, multiplier-array cycles, and lazy-reduction savings, each
    /// attributed to its operator class.
    pub fn report_to(&self, tel: &telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        for &(op, count) in &self.entries {
            let key = op.class().telemetry_key();
            tel.count(telemetry::Metric::MetaOps, key, count);
            tel.count(telemetry::Metric::MultCycles, key, op.cycles() * count);
            tel.count(
                telemetry::Metric::ReductionCyclesSaved,
                key,
                2 * (op.n() as u64 - 1) * count,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_matches_paper() {
        // DecompPolyMult with dnum digits: (M_j A_j)_dnum R_j costs
        // j*(dnum+2) mults per op — the (dnum+2)·N of Table 2 once N/j ops
        // cover a polynomial.
        let dnum = 4;
        let n_poly = 1u64 << 12;
        let op = MetaOp::new(OpClass::DecompPolyMult, 8, dnum);
        let ops_per_poly = n_poly / 8;
        assert_eq!(op.mults() * ops_per_poly, (dnum as u64 + 2) * n_poly);
    }

    #[test]
    fn trace_merging_and_totals() {
        let mut t = MetaOpTrace::new();
        let op = MetaOp::new(OpClass::Ntt, 8, 3);
        t.record(op, 10);
        t.record(op, 5);
        t.record(MetaOp::new(OpClass::Bconv, 8, 4), 2);
        t.record(op, 0); // ignored
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.total_ops(), 17);
        assert_eq!(t.total_cycles(), 15 * 5 + 2 * 6);
        assert_eq!(t.cycles_for(OpClass::Ntt), 75);
        assert_eq!(t.cycles_for(OpClass::Elementwise), 0);
    }

    #[test]
    fn class_mix_sums_to_one() {
        let mut t = MetaOpTrace::new();
        t.record(MetaOp::new(OpClass::Ntt, 8, 3), 7);
        t.record(MetaOp::new(OpClass::Bconv, 8, 10), 3);
        let mix = t.class_mix();
        let sum: f64 = mix.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lazy_reduction_savings_follow_table2() {
        // One op of length n saves 2(n-1) reduction cycles vs eager Barrett.
        let mut t = MetaOpTrace::new();
        t.record(MetaOp::new(OpClass::DecompPolyMult, 8, 4), 10);
        t.record(MetaOp::new(OpClass::Elementwise, 8, 1), 5); // n=1: no saving
        assert_eq!(t.reduction_cycles_saved(), 2 * 3 * 10);
    }

    #[test]
    fn trace_reports_counters_to_telemetry() {
        use telemetry::{Metric, OpClassKey};
        let mut t = MetaOpTrace::new();
        t.record(MetaOp::new(OpClass::Ntt, 8, 3), 4);
        t.record(MetaOp::new(OpClass::Bconv, 8, 10), 2);
        let tel = telemetry::Telemetry::enabled();
        t.report_to(&tel);
        let snap = tel.snapshot();
        assert_eq!(snap.counter(Metric::MetaOps, OpClassKey::Ntt), 4);
        assert_eq!(snap.counter(Metric::MetaOps, OpClassKey::Bconv), 2);
        assert_eq!(snap.counter(Metric::MultCycles, OpClassKey::Ntt), 5 * 4);
        assert_eq!(snap.counter(Metric::ReductionCyclesSaved, OpClassKey::Bconv), 2 * 9 * 2);
        // Disabled handles swallow everything for free.
        t.report_to(&telemetry::Telemetry::disabled());
    }

    #[test]
    fn access_patterns_match_table4() {
        assert_eq!(OpClass::Ntt.access_pattern(), AccessPattern::Slots);
        assert_eq!(OpClass::Bconv.access_pattern(), AccessPattern::Channel);
        assert_eq!(OpClass::DecompPolyMult.access_pattern(), AccessPattern::DnumGroup);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        let _ = MetaOp::new(OpClass::Ntt, 0, 3);
    }
}
