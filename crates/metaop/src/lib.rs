//! The Alchemist **Meta-OP** layer.
//!
//! The paper's key observation (§4) is that NTT, RNS base conversion
//! (`Bconv` / `Modup` / `Moddown`) and `DecompPolyMult` — the three operator
//! families whose shifting proportions starve modularized FHE accelerators —
//! all share one algebraic skeleton:
//!
//! ```text
//! (M_j A_j)_n R_j :   j lanes of (multiply, accumulate), iterated n times,
//!                     then one lazy Barrett reduction per lane
//! ```
//!
//! This crate makes that abstraction executable and accountable:
//!
//! * [`MetaOp`] / [`MetaOpTrace`] — descriptors with the hardware cost model
//!   (`n + 2` cycles per op on the unified core, reduction reusing the
//!   multiplier array),
//! * [`AccessPattern`] — the three data access patterns of paper Table 4,
//! * [`exec`] — a functional executor (lazy 128-bit accumulation, single
//!   Barrett reduction) property-tested against direct arithmetic,
//! * [`ntt`] — lowering of the full negacyclic NTT/INTT onto radix-8 and
//!   radix-4 butterfly Meta-OPs, bit-exact against [`fhe_math::NttTable`],
//! * [`linear`] — lowering of `Bconv`/`Modup`/`Moddown`/`DecompPolyMult`,
//! * [`counts`] — the multiply-count algebra of paper Tables 2–3 and the
//!   composite workload accounting behind Fig. 7(a).
//!
//! # Example
//!
//! ```
//! use fhe_math::{generate_ntt_primes, Modulus, NttTable};
//! use metaop::{ntt::NttLowering, MetaOpTrace};
//!
//! # fn main() -> Result<(), fhe_math::MathError> {
//! let q = Modulus::new(generate_ntt_primes(36, 64, 1)?[0])?;
//! let table = NttTable::new(q, 64)?;
//! let lowering = NttLowering::new(&table);
//! let mut data: Vec<u64> = (0..64).collect();
//! let mut reference = data.clone();
//! let mut trace = MetaOpTrace::new();
//! lowering.forward(&mut data, &mut trace);
//! table.forward(&mut reference);
//! assert_eq!(data, reference); // bit-exact lowering
//! assert!(trace.total_ops() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counts;
pub mod exec;
pub mod linear;
pub mod ntt;
mod op;

pub use op::{AccessPattern, MetaOp, MetaOpTrace, OpClass};
