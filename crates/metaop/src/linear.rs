//! Lowering of `Bconv` / `Modup` / `Moddown` / `DecompPolyMult` onto
//! Meta-OPs (paper §4.2, Fig. 4a–b, Tables 2–3).
//!
//! All four operators reduce to the same skeleton: per output coefficient, a
//! short dot product accumulated lazily and reduced once. The functions here
//! perform the *real* computation (bit-exact against the direct
//! implementations in [`fhe_math`]) while recording the Meta-OP stream.

use crate::{MetaOp, MetaOpTrace, OpClass};
use fhe_math::{BconvPlan, MathError, Modulus};

/// Lane width of the Alchemist core.
pub const LANES: u32 = 8;

/// Fast base conversion via Meta-OPs (paper Eq. 1, Table 3).
///
/// Computationally identical to [`BconvPlan::apply`]; additionally records
/// * one `(M_8 A_8)_1 R_8` element-wise op per 8 source coefficients (the
///   `q̂_i^{-1}` pre-scale), and
/// * one `(M_8 A_8)_L R_8` channel-pattern op per 8 destination
///   coefficients per destination channel (the lazy aggregation).
///
/// # Panics
///
/// Panics if `channels` does not match the plan's source count (delegated to
/// the same checks as [`BconvPlan::apply`]).
pub fn bconv(plan: &BconvPlan, channels: &[&[u64]], trace: &mut MetaOpTrace) -> Vec<Vec<u64>> {
    let _span = telemetry::Span::enter("metaop.bconv");
    let src_moduli = plan.src_moduli();
    assert_eq!(channels.len(), src_moduli.len(), "source channel count mismatch");
    let n = channels.first().map_or(0, |c| c.len());
    let l = src_moduli.len() as u32;

    // Pre-scale: x_i * qhat_inv_i mod q_i (element-wise Meta-OPs).
    let mut scaled = Vec::with_capacity(channels.len());
    for (i, &ch) in channels.iter().enumerate() {
        let m = src_moduli[i];
        let s = plan.qhat_inv()[i];
        scaled.push(ch.iter().map(|&x| m.mul_shoup(x, s)).collect::<Vec<u64>>());
    }
    trace.record(
        MetaOp::new(OpClass::Elementwise, LANES, 1),
        (channels.len() * n).div_ceil(LANES as usize) as u64,
    );

    // Aggregation: one lazy dot product of length L per destination
    // coefficient.
    let mut out = Vec::with_capacity(plan.dst_moduli().len());
    for (j, &pj) in plan.dst_moduli().iter().enumerate() {
        let weights = &plan.qhat_dst()[j];
        let mut channel = vec![0u64; n];
        for (s, x) in channel.iter_mut().enumerate() {
            let mut acc: u128 = 0;
            for (i, sc) in scaled.iter().enumerate() {
                acc += sc[s] as u128 * weights[i] as u128;
            }
            *x = pj.reduce_u128(acc);
        }
        out.push(channel);
        trace.record(MetaOp::new(OpClass::Bconv, LANES, l), n.div_ceil(LANES as usize) as u64);
    }
    out
}

/// `Modup` is a plain fast base conversion (paper Eq. 2); alias provided for
/// readability at call sites.
pub fn modup(plan: &BconvPlan, channels: &[&[u64]], trace: &mut MetaOpTrace) -> Vec<Vec<u64>> {
    bconv(plan, channels, trace)
}

/// `Moddown` via Meta-OPs (paper Eq. 3):
/// `[x]_{q_i} ← ([x]_{q_i} − Bconv([x]_P, q_i)) · P^{-1} mod q_i`.
///
/// `plan` must convert from the `P` channels to the `Q` channels;
/// `q_channels` is aligned with the plan's destination moduli and
/// `p_channels` with its source moduli.
///
/// # Errors
///
/// Returns [`MathError::BasisMismatch`] if channel counts disagree with the
/// plan, or [`MathError::NotInvertible`] if `P` shares a factor with a
/// destination modulus.
pub fn moddown(
    plan: &BconvPlan,
    q_channels: &[&[u64]],
    p_channels: &[&[u64]],
    trace: &mut MetaOpTrace,
) -> Result<Vec<Vec<u64>>, MathError> {
    let _span = telemetry::Span::enter("metaop.moddown");
    if q_channels.len() != plan.dst_moduli().len() {
        return Err(MathError::BasisMismatch {
            detail: "moddown Q channels misaligned with plan destinations",
        });
    }
    let converted = bconv(plan, p_channels, trace);
    let n = q_channels.first().map_or(0, |c| c.len());
    let mut out = Vec::with_capacity(q_channels.len());
    for (k, &qi) in plan.dst_moduli().iter().enumerate() {
        let p_inv = p_inverse(qi, plan.src_moduli())?;
        let channel: Vec<u64> = q_channels[k]
            .iter()
            .zip(&converted[k])
            .map(|(&x, &c)| qi.mul_shoup(qi.sub(x, c), p_inv))
            .collect();
        out.push(channel);
    }
    // Subtract-and-scale is one element-wise Meta-OP per 8 coefficients per
    // channel.
    trace.record(
        MetaOp::new(OpClass::Elementwise, LANES, 1),
        (q_channels.len() * n).div_ceil(LANES as usize) as u64,
    );
    Ok(out)
}

fn p_inverse(qi: Modulus, p_moduli: &[Modulus]) -> Result<fhe_math::ShoupScalar, MathError> {
    let mut p_mod = 1u64;
    for pj in p_moduli {
        p_mod = qi.mul(p_mod, pj.value() % qi.value());
    }
    Ok(qi.shoup(qi.inv(p_mod)?))
}

/// `DecompPolyMult` via Meta-OPs (paper Fig. 4a, Table 2): accumulates
/// `Σ_i digits[i] ⊙ keys[i]` point-wise with one reduction per output
/// coefficient, recording `(M_8 A_8)_dnum R_8` per 8 coefficients.
///
/// Inputs are NTT-domain channel data for one RNS channel; `digits[i]` and
/// `keys[i]` are the `i`-th decomposition digit and the matching evaluation
/// key polynomial.
///
/// # Panics
///
/// Panics if `digits`/`keys` lengths differ, are empty, or contain ragged
/// polynomials.
pub fn decomp_poly_mult(
    modulus: &Modulus,
    digits: &[&[u64]],
    keys: &[&[u64]],
    trace: &mut MetaOpTrace,
) -> Vec<u64> {
    let _span = telemetry::Span::enter("metaop.decomp_poly_mult");
    assert_eq!(digits.len(), keys.len(), "digit/key count mismatch");
    assert!(!digits.is_empty(), "DecompPolyMult needs at least one digit");
    let n = digits[0].len();
    assert!(digits.iter().chain(keys.iter()).all(|p| p.len() == n), "ragged polynomial inputs");
    let dnum = digits.len() as u32;
    let mut out = vec![0u64; n];
    for (s, x) in out.iter_mut().enumerate() {
        let mut acc: u128 = 0;
        for (d, k) in digits.iter().zip(keys) {
            acc += d[s] as u128 * k[s] as u128;
        }
        *x = modulus.reduce_u128(acc);
    }
    trace.record(
        MetaOp::new(OpClass::DecompPolyMult, LANES, dnum),
        n.div_ceil(LANES as usize) as u64,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_math::{generate_ntt_primes, RnsBasis, RnsContext};

    fn context(n: usize, channels: usize) -> RnsContext {
        let moduli = generate_ntt_primes(30, n, channels)
            .unwrap()
            .into_iter()
            .map(|q| Modulus::new(q).unwrap())
            .collect();
        RnsContext::new(n, RnsBasis::new(moduli).unwrap()).unwrap()
    }

    #[test]
    fn bconv_matches_reference() {
        let ctx = context(32, 5);
        let plan = ctx.bconv(&[0, 1, 2], &[3, 4]).unwrap();
        let chans: Vec<Vec<u64>> = (0..3)
            .map(|i| {
                let q = ctx.moduli()[i].value();
                (0..32u64).map(|s| (s * 1234567 + i as u64) % q).collect()
            })
            .collect();
        let refs: Vec<&[u64]> = chans.iter().map(|c| c.as_slice()).collect();
        let expected = plan.apply(&refs).unwrap();
        let mut trace = MetaOpTrace::new();
        let got = bconv(&plan, &refs, &mut trace);
        assert_eq!(got, expected);
        // One Bconv meta-op batch per destination channel with n = L = 3.
        let bconv_ops: u64 = trace
            .entries()
            .iter()
            .filter(|(op, _)| op.class() == OpClass::Bconv)
            .map(|&(op, c)| {
                assert_eq!(op.n(), 3);
                c
            })
            .sum();
        assert_eq!(bconv_ops, 2 * 32 / 8);
    }

    #[test]
    fn moddown_matches_reference() {
        let ctx = context(16, 5);
        let q_idx = [0usize, 1, 2];
        let p_idx = [3usize, 4];
        let q_chans: Vec<Vec<u64>> = q_idx
            .iter()
            .map(|&i| {
                let q = ctx.moduli()[i].value();
                (0..16u64).map(|s| (s * 99991 + 7) % q).collect()
            })
            .collect();
        let p_chans: Vec<Vec<u64>> = p_idx
            .iter()
            .map(|&i| {
                let q = ctx.moduli()[i].value();
                (0..16u64).map(|s| (s * 31337 + 3) % q).collect()
            })
            .collect();
        let qr: Vec<&[u64]> = q_chans.iter().map(|c| c.as_slice()).collect();
        let pr: Vec<&[u64]> = p_chans.iter().map(|c| c.as_slice()).collect();
        let expected = ctx.moddown(&qr, &pr, &q_idx, &p_idx).unwrap();
        let plan = ctx.bconv(&p_idx, &q_idx).unwrap();
        let mut trace = MetaOpTrace::new();
        let got = moddown(&plan, &qr, &pr, &mut trace).unwrap();
        assert_eq!(got, expected);
        assert!(trace.total_ops() > 0);
    }

    #[test]
    fn decomp_poly_mult_matches_eager() {
        let q = Modulus::new(generate_ntt_primes(36, 16, 1).unwrap()[0]).unwrap();
        let dnum = 4;
        let digits: Vec<Vec<u64>> = (0..dnum)
            .map(|d| (0..16u64).map(|s| (s * 7 + d as u64 * 13) % q.value()).collect())
            .collect();
        let keys: Vec<Vec<u64>> = (0..dnum)
            .map(|d| (0..16u64).map(|s| (s * s + d as u64) % q.value()).collect())
            .collect();
        let dr: Vec<&[u64]> = digits.iter().map(|c| c.as_slice()).collect();
        let kr: Vec<&[u64]> = keys.iter().map(|c| c.as_slice()).collect();

        let mut eager = vec![0u64; 16];
        for i in 0..dnum {
            for s in 0..16 {
                eager[s] = q.add(eager[s], q.mul(digits[i][s], keys[i][s]));
            }
        }
        let mut trace = MetaOpTrace::new();
        let got = decomp_poly_mult(&q, &dr, &kr, &mut trace);
        assert_eq!(got, eager);
        // (M_8 A_8)_dnum R_8, 16/8 = 2 ops.
        assert_eq!(trace.entries().len(), 1);
        assert_eq!(trace.entries()[0].0.n(), dnum as u32);
        assert_eq!(trace.entries()[0].1, 2);
    }

    #[test]
    fn moddown_rejects_misaligned_channels() {
        let ctx = context(16, 4);
        let plan = ctx.bconv(&[2, 3], &[0, 1]).unwrap();
        let c = vec![0u64; 16];
        let one: Vec<&[u64]> = vec![c.as_slice()];
        let two: Vec<&[u64]> = vec![c.as_slice(), c.as_slice()];
        let mut trace = MetaOpTrace::new();
        assert!(moddown(&plan, &one, &two, &mut trace).is_err());
    }
}
