//! Lowering the negacyclic NTT onto Meta-OPs (paper §4.2, Fig. 4c).
//!
//! The iterative radix-2 NTT is regrouped into **radix-8 butterflies**
//! (three consecutive radix-2 stages) plus **radix-4 butterflies** when
//! `log2(N) % 3 ≠ 0`, so every polynomial length `N ∈ [2^10, 2^16]` (and
//! smaller, for tests) lowers cleanly. Each radix-8 butterfly is one
//! `(M_8 A_8)_3 R_8` Meta-OP and each pair of radix-4 butterflies one
//! `(M_8 A_8)_2 R_8`, matching the paper's accounting of 24 lane-mults + 8
//! reductions per radix-8 group.
//!
//! A radix-8 butterfly is a *linear* map on 8 coefficients; the lowering
//! materializes its 8×8 matrix by probing the three scalar butterfly stages
//! with basis vectors and then executes it as 8 lazy dot products with one
//! Barrett reduction each ([`crate::exec::matvec_lazy`]). The hardware
//! additionally reuses shared products through its addition array (Fig. 5d);
//! the linear map — and hence the result — is identical, which is what the
//! bit-exactness tests against [`fhe_math::NttTable`] check.

use crate::exec::matvec_lazy;
use crate::{MetaOp, MetaOpTrace, OpClass};
use fhe_math::{Modulus, NttTable, ShoupScalar};

/// How one group of radix-2 stages is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    /// Three stages fused into radix-8 butterflies.
    Radix8,
    /// Two stages fused into radix-4 butterflies.
    Radix4,
}

/// A Meta-OP lowering of a fixed [`NttTable`].
///
/// See the crate-level example for usage; `forward`/`inverse` are bit-exact
/// replacements for the reference transforms that additionally record the
/// Meta-OP stream they consumed.
#[derive(Debug, Clone)]
pub struct NttLowering<'a> {
    table: &'a NttTable,
    blocks: Vec<Block>,
}

impl<'a> NttLowering<'a> {
    /// Plans the radix-8/radix-4 block schedule for `table`.
    pub fn new(table: &'a NttTable) -> Self {
        let log_n = table.log_n();
        let (r8, r4) = match log_n % 3 {
            0 => (log_n / 3, 0),
            1 => ((log_n - 4) / 3, 2),
            _ => ((log_n - 2) / 3, 1),
        };
        let mut blocks = Vec::with_capacity((r8 + r4) as usize);
        blocks.extend(std::iter::repeat_n(Block::Radix8, r8 as usize));
        blocks.extend(std::iter::repeat_n(Block::Radix4, r4 as usize));
        NttLowering { table, blocks }
    }

    /// Number of radix-8 blocks in the schedule.
    pub fn radix8_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| **b == Block::Radix8).count()
    }

    /// Number of radix-4 blocks in the schedule.
    pub fn radix4_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| **b == Block::Radix4).count()
    }

    /// Forward NTT via Meta-OPs; bit-exact vs [`NttTable::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len()` differs from the table size.
    pub fn forward(&self, a: &mut [u64], trace: &mut MetaOpTrace) {
        let _span = telemetry::Span::enter("metaop.ntt.forward");
        assert_eq!(a.len(), self.table.n());
        let mut stage = 0u32;
        for block in &self.blocks {
            match block {
                Block::Radix8 => {
                    self.forward_radix8(a, stage, trace);
                    stage += 3;
                }
                Block::Radix4 => {
                    self.forward_radix4(a, stage, trace);
                    stage += 2;
                }
            }
        }
        debug_assert_eq!(stage, self.table.log_n());
    }

    /// Inverse NTT via Meta-OPs (including the `N^{-1}` scaling, executed as
    /// element-wise `(M_8 A_8)_1 R_8`); bit-exact vs [`NttTable::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len()` differs from the table size.
    pub fn inverse(&self, a: &mut [u64], trace: &mut MetaOpTrace) {
        let _span = telemetry::Span::enter("metaop.ntt.inverse");
        assert_eq!(a.len(), self.table.n());
        // Mirror of the forward schedule: smallest spans first.
        let mut stage = 0u32;
        for block in self.blocks.iter().rev() {
            match block {
                Block::Radix4 => {
                    self.inverse_radix4(a, stage, trace);
                    stage += 2;
                }
                Block::Radix8 => {
                    self.inverse_radix8(a, stage, trace);
                    stage += 3;
                }
            }
        }
        debug_assert_eq!(stage, self.table.log_n());
        let m = self.table.modulus();
        let n_inv = self.table.n_inv();
        for x in a.iter_mut() {
            *x = m.mul_shoup(*x, n_inv);
        }
        trace.record(MetaOp::new(OpClass::Elementwise, 8, 1), (a.len() / 8).max(1) as u64);
    }

    fn forward_radix8(&self, a: &mut [u64], stage: u32, trace: &mut MetaOpTrace) {
        let n = self.table.n();
        let m = self.table.modulus();
        let psi = self.table.psi_rev();
        let groups = 1usize << stage;
        let t = n >> (stage + 1);
        debug_assert!(t >= 4, "radix-8 block requires span >= 4");
        let stride = t / 4;
        for g in 0..groups {
            let w1 = psi[groups + g];
            let w2 = [psi[2 * groups + 2 * g], psi[2 * groups + 2 * g + 1]];
            let w3: [ShoupScalar; 4] = std::array::from_fn(|k| psi[4 * groups + 4 * g + k]);
            let mat = probe_matrix8(&m, |v| {
                ct_stage(v, &m, 4, &[w1]);
                ct_stage(v, &m, 2, &w2);
                ct_stage(v, &m, 1, &w3);
            });
            let base = 2 * g * t;
            for r in 0..stride {
                apply_subset(a, &mat, &m, base + r, stride, 8);
            }
            trace.record(MetaOp::new(OpClass::Ntt, 8, 3), stride as u64);
        }
    }

    fn forward_radix4(&self, a: &mut [u64], stage: u32, trace: &mut MetaOpTrace) {
        let n = self.table.n();
        let m = self.table.modulus();
        let psi = self.table.psi_rev();
        let groups = 1usize << stage;
        let t = n >> (stage + 1);
        debug_assert!(t >= 2, "radix-4 block requires span >= 2");
        let stride = t / 2;
        for g in 0..groups {
            let w1 = psi[groups + g];
            let w2 = [psi[2 * groups + 2 * g], psi[2 * groups + 2 * g + 1]];
            let mat = probe_matrix4(&m, |v| {
                ct_stage(v, &m, 2, &[w1]);
                ct_stage(v, &m, 1, &w2);
            });
            let base = 2 * g * t;
            for r in 0..stride {
                apply_subset(a, &mat, &m, base + r, stride, 4);
            }
            // Two radix-4 butterflies share one 8-lane Meta-OP.
            trace.record(MetaOp::new(OpClass::Ntt, 8, 2), stride.div_ceil(2) as u64);
        }
    }

    fn inverse_radix8(&self, a: &mut [u64], stage: u32, trace: &mut MetaOpTrace) {
        let n = self.table.n();
        let m = self.table.modulus();
        let psi = self.table.psi_inv_rev();
        let t = 1usize << stage;
        let super_groups = n >> (stage + 3); // groups at stage+2
        for g in 0..super_groups {
            let wa: [ShoupScalar; 4] = std::array::from_fn(|k| psi[(n >> (stage + 1)) + 4 * g + k]);
            let wb = [psi[(n >> (stage + 2)) + 2 * g], psi[(n >> (stage + 2)) + 2 * g + 1]];
            let wc = [psi[super_groups + g]];
            let mat = probe_matrix8(&m, |v| {
                gs_stage(v, &m, 1, &wa);
                gs_stage(v, &m, 2, &wb);
                gs_stage(v, &m, 4, &wc);
            });
            let base = g * 8 * t;
            for r in 0..t {
                apply_subset(a, &mat, &m, base + r, t, 8);
            }
            trace.record(MetaOp::new(OpClass::Ntt, 8, 3), t as u64);
        }
    }

    fn inverse_radix4(&self, a: &mut [u64], stage: u32, trace: &mut MetaOpTrace) {
        let n = self.table.n();
        let m = self.table.modulus();
        let psi = self.table.psi_inv_rev();
        let t = 1usize << stage;
        let super_groups = n >> (stage + 2); // groups at stage+1
        for g in 0..super_groups {
            let wa = [psi[(n >> (stage + 1)) + 2 * g], psi[(n >> (stage + 1)) + 2 * g + 1]];
            let wb = [psi[super_groups + g]];
            let mat = probe_matrix4(&m, |v| {
                gs_stage(v, &m, 1, &wa);
                gs_stage(v, &m, 2, &wb);
            });
            let base = g * 4 * t;
            for r in 0..t {
                apply_subset(a, &mat, &m, base + r, t, 4);
            }
            trace.record(MetaOp::new(OpClass::Ntt, 8, 2), t.div_ceil(2) as u64);
        }
    }
}

/// One Cooley–Tukey stage restricted to an 8-or-4 element window, expressed
/// in subset-index units. `half` is the butterfly span in subset units and
/// `tw` holds one twiddle per group within the window.
fn ct_stage(v: &mut [u64], m: &Modulus, half: usize, tw: &[ShoupScalar]) {
    let group_size = 2 * half;
    for (gi, &w) in tw.iter().enumerate() {
        let base = gi * group_size;
        for k in base..base + half {
            let u = v[k];
            let x = m.mul_shoup(v[k + half], w);
            v[k] = m.add(u, x);
            v[k + half] = m.sub(u, x);
        }
    }
}

/// One Gentleman–Sande stage restricted to a window (subset-index units).
fn gs_stage(v: &mut [u64], m: &Modulus, half: usize, tw: &[ShoupScalar]) {
    let group_size = 2 * half;
    for (gi, &w) in tw.iter().enumerate() {
        let base = gi * group_size;
        for k in base..base + half {
            let u = v[k];
            let x = v[k + half];
            v[k] = m.add(u, x);
            v[k + half] = m.mul_shoup(m.sub(u, x), w);
        }
    }
}

/// Materializes the 8×8 matrix of a 3-stage butterfly by probing basis
/// vectors (row-major).
fn probe_matrix8(m: &Modulus, stages: impl Fn(&mut [u64])) -> Vec<u64> {
    probe_matrix(m, stages, 8)
}

/// Materializes the 4×4 matrix of a 2-stage butterfly.
fn probe_matrix4(m: &Modulus, stages: impl Fn(&mut [u64])) -> Vec<u64> {
    probe_matrix(m, stages, 4)
}

fn probe_matrix(_m: &Modulus, stages: impl Fn(&mut [u64]), r: usize) -> Vec<u64> {
    let mut mat = vec![0u64; r * r];
    let mut v = vec![0u64; r];
    for i in 0..r {
        v.iter_mut().for_each(|x| *x = 0);
        v[i] = 1;
        stages(&mut v);
        for k in 0..r {
            mat[k * r + i] = v[k];
        }
    }
    mat
}

/// Gathers the subset `{base + k·stride}`, applies the butterfly matrix via
/// lazy dot products, and scatters back.
fn apply_subset(a: &mut [u64], mat: &[u64], m: &Modulus, base: usize, stride: usize, r: usize) {
    let mut v = vec![0u64; r];
    for (k, x) in v.iter_mut().enumerate() {
        *x = a[base + k * stride];
    }
    let out = matvec_lazy(m, mat, &v);
    for (k, &x) in out.iter().enumerate() {
        a[base + k * stride] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_math::generate_ntt_primes;

    fn table(n: usize) -> NttTable {
        let q = Modulus::new(generate_ntt_primes(36, n, 1).unwrap()[0]).unwrap();
        NttTable::new(q, n).unwrap()
    }

    #[test]
    fn forward_bit_exact_all_log_residues() {
        // log2(n) % 3 covers 0 (64, 512), 1 (16, 128), 2 (8, 32, 256).
        for n in [8usize, 16, 32, 64, 128, 256, 512, 1024] {
            let t = table(n);
            let q = t.modulus().value();
            let mut a: Vec<u64> = (0..n as u64).map(|i| (i * 0x9e3779b9 + 17) % q).collect();
            let mut reference = a.clone();
            let mut trace = MetaOpTrace::new();
            NttLowering::new(&t).forward(&mut a, &mut trace);
            t.forward(&mut reference);
            assert_eq!(a, reference, "n = {n}");
            assert!(trace.total_ops() > 0);
        }
    }

    #[test]
    fn inverse_bit_exact_all_log_residues() {
        for n in [8usize, 16, 32, 64, 128, 256, 512] {
            let t = table(n);
            let q = t.modulus().value();
            let mut a: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 7) % q).collect();
            let mut reference = a.clone();
            let mut trace = MetaOpTrace::new();
            NttLowering::new(&t).inverse(&mut a, &mut trace);
            t.inverse(&mut reference);
            assert_eq!(a, reference, "n = {n}");
        }
    }

    #[test]
    fn forward_then_inverse_via_metaops_is_identity() {
        let t = table(256);
        let q = t.modulus().value();
        let lowering = NttLowering::new(&t);
        let original: Vec<u64> = (0..256u64).map(|i| (i * i) % q).collect();
        let mut a = original.clone();
        let mut trace = MetaOpTrace::new();
        lowering.forward(&mut a, &mut trace);
        lowering.inverse(&mut a, &mut trace);
        assert_eq!(a, original);
    }

    #[test]
    fn block_schedule_shapes() {
        assert_eq!(NttLowering::new(&table(64)).radix8_blocks(), 2); // log 6
        assert_eq!(NttLowering::new(&table(64)).radix4_blocks(), 0);
        assert_eq!(NttLowering::new(&table(16)).radix8_blocks(), 0); // log 4
        assert_eq!(NttLowering::new(&table(16)).radix4_blocks(), 2);
        assert_eq!(NttLowering::new(&table(32)).radix8_blocks(), 1); // log 5
        assert_eq!(NttLowering::new(&table(32)).radix4_blocks(), 1);
    }

    #[test]
    fn meta_op_counts_match_paper_accounting() {
        // For n = 512 (log 9 = 3 radix-8 blocks): each block issues n/8
        // Meta-OPs of (M8A8)_3R8; total mults = 3 blocks * (512/8) * 8*(3+2)
        // = 7680, i.e. 15 mults/coefficient — the 40-mults-per-radix-8-group
        // figure of §4.2 (40/8 per coefficient per block).
        let t = table(512);
        let mut a = vec![1u64; 512];
        let mut trace = MetaOpTrace::new();
        NttLowering::new(&t).forward(&mut a, &mut trace);
        assert_eq!(trace.total_ops(), 3 * 512 / 8);
        assert_eq!(trace.total_mults(), 3 * (512 / 8) * 8 * 5);
    }

    #[test]
    fn trace_classes_are_ntt() {
        let t = table(128);
        let mut a = vec![0u64; 128];
        let mut trace = MetaOpTrace::new();
        NttLowering::new(&t).forward(&mut a, &mut trace);
        assert!(trace.entries().iter().all(|(op, _)| op.class() == OpClass::Ntt));
    }
}
