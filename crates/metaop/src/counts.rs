//! Multiply-count accounting: paper Tables 2–3 and the workload-level
//! overhead analysis of Fig. 7(a).
//!
//! Counting conventions (matching §4.2):
//!
//! * a modular multiplication with an *eager* Barrett reduction costs
//!   3 word multiplications (1 product + 2 for the reduction);
//! * a lazily-accumulated dot product of length `n` costs `n + 2`
//!   (paper Table 2: `(dnum + 2)·N` vs `3·dnum·N`);
//! * a radix-8 Meta-OP butterfly costs 40 mults per 8 coefficients per 3
//!   stages (24 lane products + 8 two-mult reductions) vs 36 for the
//!   radix-2 original — the "only 10%" penalty of §4.2;
//! * a radix-4 Meta-OP butterfly pair costs 32 per 8 coefficients per 2
//!   stages vs 24 original.
//!
//! Workload graphs (Cmult, hoisted rotations, bootstrapping, TFHE PBS) are
//! the same graphs `alchemist-core` compiles for the cycle simulator; the
//! structural assumptions are spelled out on each builder and recorded in
//! `EXPERIMENTS.md`.

use crate::OpClass;

/// Original-vs-Meta-OP multiply counts for one operator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransformCounts {
    /// Word multiplications with eager reductions (the "Origin" rows of
    /// Tables 2–3).
    pub original: u64,
    /// Word multiplications after lowering to `(M_j A_j)_n R_j`.
    pub meta: u64,
}

impl TransformCounts {
    /// Relative change `meta/original - 1` in percent (negative = saving).
    pub fn change_pct(&self) -> f64 {
        if self.original == 0 {
            0.0
        } else {
            (self.meta as f64 / self.original as f64 - 1.0) * 100.0
        }
    }
}

/// Paper Table 2: `DecompPolyMult` over `dnum` digits and one output
/// channel of an `N`-coefficient polynomial:
/// original `3·dnum·N`, Meta-OP `(dnum + 2)·N`.
pub fn decomp_poly_mult_counts(dnum: u64, n: u64) -> TransformCounts {
    TransformCounts { original: 3 * dnum * n, meta: (dnum + 2) * n }
}

/// Paper Table 3: `Modup`/`Bconv` from `l` input channels to `k` output
/// channels: original `(3·k·l + 3·l)·N`, Meta-OP `(k·l + 3·l + 2·k)·N`.
pub fn bconv_counts(l: u64, k: u64, n: u64) -> TransformCounts {
    TransformCounts { original: (3 * k * l + 3 * l) * n, meta: (k * l + 3 * l + 2 * k) * n }
}

/// NTT of one `N`-point polynomial (one RNS channel), blocked into radix-8
/// and radix-4 Meta-OPs exactly as [`crate::ntt::NttLowering`] schedules
/// them.
pub fn ntt_counts(n: u64) -> TransformCounts {
    let log_n = n.trailing_zeros() as u64;
    debug_assert!(n.is_power_of_two() && log_n >= 3);
    let (r8, r4) = match log_n % 3 {
        0 => (log_n / 3, 0),
        1 => ((log_n - 4) / 3, 2),
        _ => ((log_n - 2) / 3, 1),
    };
    TransformCounts { original: 3 * (n / 2) * log_n, meta: 5 * n * r8 + 4 * n * r4 }
}

/// Element-wise modular multiplications: 3 mults per coefficient in both
/// formulations (`(M_8 A_8)_1 R_8` is 1 + 2 as well).
pub fn elementwise_counts(coefficients: u64) -> TransformCounts {
    TransformCounts { original: 3 * coefficients, meta: 3 * coefficients }
}

/// Aggregated multiply counts of a workload, split by operator class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OperatorMults {
    /// NTT/INTT transforms.
    pub ntt: TransformCounts,
    /// RNS base conversions.
    pub bconv: TransformCounts,
    /// Decomposed polynomial-times-key accumulations.
    pub decomp: TransformCounts,
    /// Element-wise multiply work.
    pub elementwise: TransformCounts,
}

impl OperatorMults {
    /// Total original-formulation multiplications.
    pub fn total_original(&self) -> u64 {
        self.ntt.original + self.bconv.original + self.decomp.original + self.elementwise.original
    }

    /// Total Meta-OP multiplications.
    pub fn total_meta(&self) -> u64 {
        self.ntt.meta + self.bconv.meta + self.decomp.meta + self.elementwise.meta
    }

    /// Overall change in percent (negative = the Meta-OP lowering reduced
    /// total multiplications — Fig. 7a).
    pub fn change_pct(&self) -> f64 {
        TransformCounts { original: self.total_original(), meta: self.total_meta() }.change_pct()
    }

    /// Fraction of original multiplications per operator class, in
    /// [`OpClass::all`] order — the "operator ratio in the algorithm" bars
    /// of Fig. 1. `Transfer` moves no multiplications and is always 0.
    pub fn class_fractions(&self) -> [(OpClass, f64); 5] {
        let total = self.total_original().max(1) as f64;
        [
            (OpClass::Ntt, self.ntt.original as f64 / total),
            (OpClass::Bconv, self.bconv.original as f64 / total),
            (OpClass::DecompPolyMult, self.decomp.original as f64 / total),
            (OpClass::Elementwise, self.elementwise.original as f64 / total),
            (OpClass::Transfer, 0.0),
        ]
    }

    /// Component-wise accumulation.
    pub fn merge(&mut self, other: &OperatorMults) {
        self.ntt.original += other.ntt.original;
        self.ntt.meta += other.ntt.meta;
        self.bconv.original += other.bconv.original;
        self.bconv.meta += other.bconv.meta;
        self.decomp.original += other.decomp.original;
        self.decomp.meta += other.decomp.meta;
        self.elementwise.original += other.elementwise.original;
        self.elementwise.meta += other.elementwise.meta;
    }

    /// Returns the workload repeated `times` times.
    pub fn scaled(&self, times: u64) -> OperatorMults {
        let s = |c: TransformCounts| TransformCounts {
            original: c.original * times,
            meta: c.meta * times,
        };
        OperatorMults {
            ntt: s(self.ntt),
            bconv: s(self.bconv),
            decomp: s(self.decomp),
            elementwise: s(self.elementwise),
        }
    }
}

/// CKKS parameters for workload counting.
///
/// `dnum` partitions the *maximum* chain, so the digit size
/// `alpha = ceil((l_max+1)/dnum)` and the special-modulus count
/// `K = alpha` stay fixed as the ciphertext level drops — the convention of
/// SHARP/ARK that the paper adopts (its Table 7 point is
/// `N = 2^16, L = 44, dnum = 4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkksCountParams {
    /// Polynomial degree `N`.
    pub n: u64,
    /// Maximum multiplicative level `L` (chain has `L+1` primes).
    pub l_max: u64,
    /// Current ciphertext level (`≤ l_max`).
    pub level: u64,
    /// Hybrid key-switching decomposition number.
    pub dnum: u64,
}

impl CkksCountParams {
    /// The paper's headline operating point: `N = 2^16, L = 44, dnum = 4`.
    pub fn paper_default() -> Self {
        CkksCountParams { n: 1 << 16, l_max: 44, level: 44, dnum: 4 }
    }

    /// Digit size `alpha = ceil((l_max+1)/dnum)`.
    pub fn alpha(&self) -> u64 {
        (self.l_max + 1).div_ceil(self.dnum)
    }

    /// Number of special moduli `K` (= alpha in this convention).
    pub fn k(&self) -> u64 {
        self.alpha()
    }

    /// Channels at the current level.
    pub fn c(&self) -> u64 {
        self.level + 1
    }

    /// Digits actually occupied at the current level.
    pub fn beta(&self) -> u64 {
        self.c().div_ceil(self.alpha())
    }

    /// Extended basis size `c + K`.
    pub fn t(&self) -> u64 {
        self.c() + self.k()
    }

    /// Same parameters at a different level.
    pub fn at_level(&self, level: u64) -> Self {
        CkksCountParams { level, ..*self }
    }
}

/// Hybrid key switching of one polynomial (the `d2` part of Cmult or the
/// rotated `d1` of a rotation):
/// INTT(c) → per-digit Modup(alpha → t−alpha) → NTT(beta·(t−alpha)) →
/// DecompPolyMult(2 output polys × t channels) → INTT(2t) →
/// Moddown(2 × Bconv(K → c) + scale).
pub fn keyswitch(p: &CkksCountParams) -> OperatorMults {
    let (n, c, alpha, beta, t, k) = (p.n, p.c(), p.alpha(), p.beta(), p.t(), p.k());
    let ntt_transforms = c + beta * (t - alpha) + 2 * t;
    let one_ntt = ntt_counts(n);
    let mut out = OperatorMults::default();
    out.ntt.original = one_ntt.original * ntt_transforms;
    out.ntt.meta = one_ntt.meta * ntt_transforms;

    let modup_one = bconv_counts(alpha, t - alpha, n);
    let moddown_one = bconv_counts(k, c, n);
    out.bconv.original = modup_one.original * beta + moddown_one.original * 2;
    out.bconv.meta = modup_one.meta * beta + moddown_one.meta * 2;

    let d = decomp_poly_mult_counts(beta, n);
    out.decomp.original = d.original * 2 * t;
    out.decomp.meta = d.meta * 2 * t;

    // Moddown subtract-and-scale over 2c channels.
    let ew = elementwise_counts(2 * c * n);
    out.elementwise = ew;
    out
}

/// Full ciphertext multiplication: tensor product (4 point-wise channel
/// products + recombination) + key switch of `d2` + rescale.
pub fn cmult(p: &CkksCountParams) -> OperatorMults {
    let (n, c) = (p.n, p.c());
    let mut out = keyswitch(p);
    // Tensor: 4 channel products; rescale: (c-1) channels × 2 polys.
    let extra = elementwise_counts(4 * c * n + 2 * (c - 1) * n);
    out.elementwise.original += extra.original;
    out.elementwise.meta += extra.meta;
    out
}

/// A group of `n_rot` rotations with **Modup hoisting** (the `BSP-L=n+`
/// variant of Fig. 1): the INTT + Modup of the input is shared across the
/// group, each rotation pays only its `DecompPolyMult`, and the group
/// accumulates in the extended basis so a *single* INTT + Moddown closes it.
pub fn hoisted_rotation_group(p: &CkksCountParams, n_rot: u64) -> OperatorMults {
    let (n, c, alpha, beta, t, k) = (p.n, p.c(), p.alpha(), p.beta(), p.t(), p.k());
    let one_ntt = ntt_counts(n);
    let mut out = OperatorMults::default();

    // Shared: INTT(c) + Modup + NTT of converted channels; closing:
    // INTT(2t) + one Moddown.
    let ntt_transforms = c + beta * (t - alpha) + 2 * t;
    out.ntt.original = one_ntt.original * ntt_transforms;
    out.ntt.meta = one_ntt.meta * ntt_transforms;

    let modup_one = bconv_counts(alpha, t - alpha, n);
    let moddown_one = bconv_counts(k, c, n);
    out.bconv.original = modup_one.original * beta + moddown_one.original * 2;
    out.bconv.meta = modup_one.meta * beta + moddown_one.meta * 2;

    // Per rotation: automorphism (permutation, free) + DecompPolyMult.
    let d = decomp_poly_mult_counts(beta, n);
    out.decomp.original = d.original * 2 * t * n_rot;
    out.decomp.meta = d.meta * 2 * t * n_rot;

    let ew = elementwise_counts(2 * c * n);
    out.elementwise = ew;
    out
}

/// Structural model of fully-packed CKKS bootstrapping used for Fig. 7(a)
/// and Fig. 1.
///
/// The graph: CoeffToSlot (3 BSGS linear layers near the top of the chain),
/// EvalMod (≈10 Cmults mid-chain), SlotToCoeff (3 layers lower in the
/// chain). Each linear layer runs two double-hoisted rotation groups of 24
/// rotations (baby and giant steps both amortize their Modup, the standard
/// BSGS double-hoisting of fully-packed bootstrapping); the non-hoisted
/// variant pays a full key switch per rotation. Constants are calibrated so
/// the multiply-overhead change reproduces the paper's −37.1% (Fig. 7a) and
/// the Fig. 1 operator mix, and the same graph drives the cycle simulator;
/// they are recorded in `EXPERIMENTS.md`.
pub fn bootstrapping(p: &CkksCountParams, hoisted: bool) -> OperatorMults {
    let mut out = OperatorMults::default();
    let cts_levels = [p.l_max, p.l_max - 1, p.l_max - 2];
    let stc_levels =
        [p.l_max.saturating_sub(20), p.l_max.saturating_sub(21), p.l_max.saturating_sub(22)];
    const ROTS_PER_GROUP: u64 = 24;
    const GROUPS_PER_LAYER: u64 = 2;
    for &lvl in cts_levels.iter().chain(&stc_levels) {
        let pl = p.at_level(lvl);
        if hoisted {
            for _ in 0..GROUPS_PER_LAYER {
                out.merge(&hoisted_rotation_group(&pl, ROTS_PER_GROUP));
            }
        } else {
            out.merge(&keyswitch(&pl).scaled(GROUPS_PER_LAYER * ROTS_PER_GROUP));
        }
    }
    // EvalMod: ~10 Cmults around the middle of the chain.
    let mid = p.at_level(p.l_max.saturating_sub(10));
    out.merge(&cmult(&mid).scaled(10));
    out
}

/// TFHE parameters for programmable-bootstrapping counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TfheCountParams {
    /// GLWE polynomial degree `N`.
    pub n_poly: u64,
    /// LWE dimension `n` (blind-rotation step count).
    pub lwe_dim: u64,
    /// GLWE dimension `k`.
    pub k_glwe: u64,
    /// TRGSW decomposition levels `l_b`.
    pub lb: u64,
    /// LWE key-switch decomposition levels.
    pub ks_levels: u64,
}

impl TfheCountParams {
    /// Parameter set I (Matcha/Concrete-style): `n=630, N=1024, k=1, l=3`.
    pub fn set_i() -> Self {
        TfheCountParams { n_poly: 1024, lwe_dim: 630, k_glwe: 1, lb: 3, ks_levels: 3 }
    }

    /// Parameter set II (Strix-style, larger ring): `n=742, N=2048, k=1, l=2`.
    pub fn set_ii() -> Self {
        TfheCountParams { n_poly: 2048, lwe_dim: 742, k_glwe: 1, lb: 2, ks_levels: 4 }
    }
}

/// One TFHE programmable bootstrapping: `n` blind-rotation CMux steps
/// (each: `(k+1)·l_b` forward NTTs, the external-product MAC, `k+1` inverse
/// NTTs) followed by the LWE key switch (a long lazily-reducible MAC).
pub fn pbs(p: &TfheCountParams) -> OperatorMults {
    let kp1 = p.k_glwe + 1;
    let n = p.n_poly;
    let one_ntt = ntt_counts(n);
    let transforms_per_step = kp1 * p.lb + kp1;
    let mut out = OperatorMults::default();
    out.ntt.original = one_ntt.original * transforms_per_step * p.lwe_dim;
    out.ntt.meta = one_ntt.meta * transforms_per_step * p.lwe_dim;

    // External product MAC: per step, kp1 output polys accumulate kp1*lb
    // products per coefficient.
    let d = decomp_poly_mult_counts(kp1 * p.lb, n);
    out.decomp.original = d.original * kp1 * p.lwe_dim;
    out.decomp.meta = d.meta * kp1 * p.lwe_dim;

    // LWE keyswitch: N·t_ks digit-key products accumulated into an
    // (n_lwe+1)-vector. Lazy accumulation reduces once per 64 terms
    // (accumulator guard) instead of per term.
    let terms = n * p.ks_levels;
    let outputs = p.lwe_dim + 1;
    out.elementwise.original += 3 * terms * outputs;
    out.elementwise.meta += terms * outputs + 2 * outputs * terms.div_ceil(64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        // dnum = 4, N = 2^16: 12·N vs 6·N — a 2x multiply saving.
        let c = decomp_poly_mult_counts(4, 1 << 16);
        assert_eq!(c.original, 12 << 16);
        assert_eq!(c.meta, 6 << 16);
        // Up-to-3x saving cited in §4.2 as dnum grows.
        let big = decomp_poly_mult_counts(60, 1);
        assert!(big.original as f64 / big.meta as f64 > 2.9);
    }

    #[test]
    fn table3_values() {
        let c = bconv_counts(12, 45, 1);
        assert_eq!(c.original, 3 * 45 * 12 + 3 * 12);
        assert_eq!(c.meta, 45 * 12 + 3 * 12 + 2 * 45);
        assert!(c.change_pct() < -50.0);
    }

    #[test]
    fn ntt_penalty_is_about_ten_percent() {
        // Pure radix-8 case: 5N per block vs 4.5N → +11.1%.
        let c = ntt_counts(1 << 12);
        assert!((c.change_pct() - 11.1).abs() < 0.2, "got {}", c.change_pct());
        // Mixed-radix cases stay under 20%.
        for log in 10..=16 {
            let c = ntt_counts(1 << log);
            assert!(c.change_pct() > 0.0 && c.change_pct() < 20.0);
        }
    }

    #[test]
    fn fig7a_cmult_l24_reduction_matches_paper() {
        // Paper: −23.3% for Cmult at L = 24.
        let p = CkksCountParams::paper_default().at_level(24);
        let m = cmult(&p);
        let pct = m.change_pct();
        assert!(
            (-27.0..=-19.0).contains(&pct),
            "Cmult L=24 multiply change {pct:.1}% not within 4pp of paper's -23.3%"
        );
    }

    #[test]
    fn fig7a_bootstrapping_reduction_matches_paper() {
        // Paper: −37.1% for bootstrapping at L = 44 with Modup hoisting.
        let p = CkksCountParams::paper_default();
        let pct = bootstrapping(&p, true).change_pct();
        assert!(
            (-42.0..=-32.0).contains(&pct),
            "hoisted bootstrapping change {pct:.1}% not within 5pp of paper's -37.1%"
        );
        // Hoisting must strictly increase the saving.
        let plain = bootstrapping(&p, false).change_pct();
        assert!(pct < plain, "hoisted {pct:.1}% vs plain {plain:.1}%");
    }

    #[test]
    fn fig7a_tfhe_pbs_is_near_neutral_and_negative() {
        // Paper: −3.4%; anywhere in (−8%, 0%) preserves the finding that
        // the NTT penalty is outweighed by MAC/keyswitch lazy reduction.
        let pct = pbs(&TfheCountParams::set_i()).change_pct();
        assert!((-8.0..0.0).contains(&pct), "TFHE PBS change {pct:.1}%");
    }

    #[test]
    fn fig1_operator_mix_shapes() {
        // TFHE PBS is NTT-dominated; hoisted bootstrapping is Bconv-heavy.
        let t = pbs(&TfheCountParams::set_i());
        let tf = t.class_fractions();
        assert!(tf[0].1 > 0.7, "TFHE NTT share {:.2}", tf[0].1);

        let b = bootstrapping(&CkksCountParams::paper_default(), true);
        let bf = b.class_fractions();
        // Hoisting shifts work from NTT into Bconv + DecompPolyMult — the
        // defining shape of the BSP-L=44+ bar in Fig. 1.
        assert!(bf[1].1 + bf[2].1 > 0.40, "BSP+ Bconv+Decomp share {:.2}", bf[1].1 + bf[2].1);
        let sum: f64 = bf.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn level_monotonicity() {
        // Higher level → strictly more work.
        let p = CkksCountParams::paper_default();
        let hi = cmult(&p.at_level(44)).total_original();
        let lo = cmult(&p.at_level(10)).total_original();
        assert!(hi > lo);
    }

    #[test]
    fn scaled_and_merge_are_consistent() {
        let p = CkksCountParams::paper_default().at_level(20);
        let one = keyswitch(&p);
        let mut twice = OperatorMults::default();
        twice.merge(&one);
        twice.merge(&one);
        assert_eq!(twice.total_meta(), one.scaled(2).total_meta());
        assert_eq!(twice.total_original(), one.scaled(2).total_original());
    }
}
