//! Functional execution of Meta-OPs: lazy 128-bit accumulation with a single
//! Barrett reduction, exactly the dataflow of Fig. 5(d).
//!
//! With moduli capped at 61 bits ([`fhe_math::Modulus`]), a product is below
//! `2^122`, so up to 64 products fit a `u128` accumulator without overflow —
//! comfortably covering the paper's `n` range (`dnum ≤ 6`, `L ≤ 60`,
//! radix-8 `n = 3`).

use crate::OpClass;
use fhe_math::Modulus;

/// Accumulates `Σ_i a[i]·b[i]` lazily and reduces once.
///
/// This is one lane of `(M_1 A_1)_n R_1`; a full `(M_j A_j)_n R_j` is `j`
/// independent lanes (see [`meta_op_lanes`]).
///
/// # Panics
///
/// Panics if the operand slices have different lengths or more than 64
/// elements (accumulator overflow guard).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_math::MathError> {
/// let q = fhe_math::Modulus::new(65537)?;
/// let r = metaop::exec::lazy_dot(&q, &[2, 3], &[10, 100]);
/// assert_eq!(r, 320);
/// # Ok(())
/// # }
/// ```
pub fn lazy_dot(modulus: &Modulus, a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "lazy_dot operand length mismatch");
    assert!(a.len() <= 64, "lazy accumulation overflow guard: n must be <= 64");
    let mut acc: u128 = 0;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as u128 * y as u128;
    }
    modulus.reduce_u128(acc)
}

/// Executes one `(M_j A_j)_n R_j` Meta-OP over `j` lanes.
///
/// `lanes[k]` supplies the `n` operand pairs of lane `k`; the result is the
/// reduced accumulation per lane. All lanes must present the same `n`.
///
/// # Panics
///
/// Panics if lanes have inconsistent lengths (the hardware issues all `j`
/// lanes in lockstep) or a lane exceeds 64 iterations.
pub fn meta_op_lanes(modulus: &Modulus, lanes: &[(&[u64], &[u64])]) -> Vec<u64> {
    let n = lanes.first().map_or(0, |(a, _)| a.len());
    lanes
        .iter()
        .map(|(a, b)| {
            assert_eq!(a.len(), n, "Meta-OP lanes must share the iteration count n");
            lazy_dot(modulus, a, b)
        })
        .collect()
}

/// [`meta_op_lanes`] plus telemetry accounting: counts the Meta-OP, its
/// multiplier-array cycles (`n + 2`) and the reduction cycles the lazy
/// accumulation saved (`2(n-1)`) against `class` on `tel`.
///
/// The counting is a single branch when `tel` is disabled, so this variant
/// is safe to use on warm paths; the per-8-coefficient kernels themselves
/// ([`lazy_dot`], [`matvec_lazy`]) stay uninstrumented.
///
/// # Panics
///
/// Same contract as [`meta_op_lanes`].
pub fn meta_op_lanes_counted(
    modulus: &Modulus,
    lanes: &[(&[u64], &[u64])],
    class: OpClass,
    tel: &telemetry::Telemetry,
) -> Vec<u64> {
    let out = meta_op_lanes(modulus, lanes);
    if tel.is_enabled() {
        let n = lanes.first().map_or(0, |(a, _)| a.len()) as u64;
        let key = class.telemetry_key();
        tel.count(telemetry::Metric::MetaOps, key, 1);
        tel.count(telemetry::Metric::MultCycles, key, n + 2);
        tel.count(telemetry::Metric::ReductionCyclesSaved, key, 2 * n.saturating_sub(1));
    }
    out
}

/// Applies a dense `r × r` matrix to a vector with one reduction per output
/// — how the lowered radix-`r` NTT butterfly executes on the unified core
/// (the hardware additionally exploits shared products via its addition
/// array; the linear map is identical).
///
/// # Panics
///
/// Panics if `matrix.len() != v.len()²`.
pub fn matvec_lazy(modulus: &Modulus, matrix: &[u64], v: &[u64]) -> Vec<u64> {
    let r = v.len();
    assert_eq!(matrix.len(), r * r, "matrix shape mismatch");
    (0..r).map(|k| lazy_dot(modulus, &matrix[k * r..(k + 1) * r], v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_math::generate_ntt_primes;

    fn modulus() -> Modulus {
        Modulus::new(generate_ntt_primes(60, 8, 1).unwrap()[0]).unwrap()
    }

    #[test]
    fn lazy_dot_matches_eager_reduction() {
        let q = modulus();
        let a: Vec<u64> = (0..64).map(|i| q.value() - 1 - i).collect();
        let b: Vec<u64> = (0..64).map(|i| q.value() - 1 - 2 * i).collect();
        let mut eager = 0u64;
        for (&x, &y) in a.iter().zip(&b) {
            eager = q.add(eager, q.mul(x, y));
        }
        assert_eq!(lazy_dot(&q, &a, &b), eager);
    }

    #[test]
    fn worst_case_accumulation_no_overflow() {
        // 64 products of (q-1)^2 with q just under 2^61 stays within u128.
        let q = Modulus::new((1u64 << 61) - 1).unwrap();
        let a = vec![q.value() - 1; 64];
        let r = lazy_dot(&q, &a, &a);
        // (q-1)^2 * 64 mod q == 64 (since (q-1)^2 ≡ 1).
        assert_eq!(r, 64);
    }

    #[test]
    fn lanes_execute_independently() {
        let q = modulus();
        let a1 = [1u64, 2, 3];
        let b1 = [4u64, 5, 6];
        let a2 = [7u64, 8, 9];
        let b2 = [1u64, 1, 1];
        let out = meta_op_lanes(&q, &[(&a1, &b1), (&a2, &b2)]);
        assert_eq!(out, vec![32, 24]);
    }

    #[test]
    fn matvec_identity() {
        let q = modulus();
        let mut eye = vec![0u64; 16];
        for k in 0..4 {
            eye[k * 4 + k] = 1;
        }
        let v = vec![10, 20, 30, 40];
        assert_eq!(matvec_lazy(&q, &eye, &v), v);
    }

    #[test]
    fn counted_lanes_match_and_account() {
        use telemetry::{Metric, OpClassKey, Telemetry};
        let q = modulus();
        let a = [1u64, 2, 3, 4];
        let b = [5u64, 6, 7, 8];
        let lanes = [(&a[..], &b[..]), (&b[..], &a[..])];
        let tel = Telemetry::enabled();
        let counted = meta_op_lanes_counted(&q, &lanes, OpClass::Bconv, &tel);
        assert_eq!(counted, meta_op_lanes(&q, &lanes));
        let snap = tel.snapshot();
        assert_eq!(snap.counter(Metric::MetaOps, OpClassKey::Bconv), 1);
        assert_eq!(snap.counter(Metric::MultCycles, OpClassKey::Bconv), 6);
        assert_eq!(snap.counter(Metric::ReductionCyclesSaved, OpClassKey::Bconv), 6);
        // Disabled: identical results, nothing recorded.
        let off = Telemetry::disabled();
        assert_eq!(meta_op_lanes_counted(&q, &lanes, OpClass::Bconv, &off), counted);
    }

    #[test]
    #[should_panic(expected = "overflow guard")]
    fn oversized_accumulation_rejected() {
        let q = modulus();
        let a = vec![1u64; 65];
        let _ = lazy_dot(&q, &a, &a);
    }
}
