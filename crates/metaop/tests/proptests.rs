//! Property-based tests of the Meta-OP layer: the lowered operators must
//! be *bit-exact* against the reference implementations for arbitrary
//! inputs and supported sizes.

use fhe_math::{generate_ntt_primes, Modulus, NttTable, RnsBasis, RnsContext};
use metaop::counts;
use metaop::exec::lazy_dot;
use metaop::ntt::NttLowering;
use metaop::{linear, MetaOpTrace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lazy_dot_equals_eager(
        pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 1..64)
    ) {
        let q = Modulus::new(generate_ntt_primes(60, 8, 1).unwrap()[0]).unwrap();
        let xs: Vec<u64> = pairs.iter().map(|(a, _)| q.reduce(*a)).collect();
        let ys: Vec<u64> = pairs.iter().map(|(_, b)| q.reduce(*b)).collect();
        let mut eager = 0u64;
        for (&x, &y) in xs.iter().zip(&ys) {
            eager = q.add(eager, q.mul(x, y));
        }
        prop_assert_eq!(lazy_dot(&q, &xs, &ys), eager);
    }

    #[test]
    fn ntt_lowering_bit_exact(
        log_n in 3u32..9,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let q = Modulus::new(generate_ntt_primes(36, n, 1).unwrap()[0]).unwrap();
        let table = NttTable::new(q, n).unwrap();
        let lowering = NttLowering::new(&table);
        let mut state = seed | 1;
        let data: Vec<u64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                q.reduce(state)
            })
            .collect();
        let mut reference = data.clone();
        table.forward(&mut reference);
        let mut lowered = data.clone();
        let mut trace = MetaOpTrace::new();
        lowering.forward(&mut lowered, &mut trace);
        prop_assert_eq!(&lowered, &reference);
        // And the inverse returns to the input.
        lowering.inverse(&mut lowered, &mut trace);
        prop_assert_eq!(lowered, data);
    }

    #[test]
    fn bconv_lowering_bit_exact(seed in any::<u64>()) {
        let n = 16usize;
        let moduli: Vec<Modulus> = generate_ntt_primes(30, n, 5)
            .unwrap()
            .into_iter()
            .map(|p| Modulus::new(p).unwrap())
            .collect();
        let ctx = RnsContext::new(n, RnsBasis::new(moduli).unwrap()).unwrap();
        let plan = ctx.bconv(&[0, 1, 2], &[3, 4]).unwrap();
        let mut state = seed | 1;
        let chans: Vec<Vec<u64>> = (0..3)
            .map(|i| {
                (0..n)
                    .map(|_| {
                        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037);
                        ctx.moduli()[i].reduce(state)
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[u64]> = chans.iter().map(|c| c.as_slice()).collect();
        let mut trace = MetaOpTrace::new();
        prop_assert_eq!(linear::bconv(&plan, &refs, &mut trace), plan.apply(&refs).unwrap());
    }

    #[test]
    fn decomp_poly_mult_lowering_bit_exact(
        dnum in 1usize..6,
        seed in any::<u64>(),
    ) {
        let n = 16usize;
        let q = Modulus::new(generate_ntt_primes(36, n, 1).unwrap()[0]).unwrap();
        let mut state = seed | 1;
        let mut rand_poly = || -> Vec<u64> {
            (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(77);
                    q.reduce(state)
                })
                .collect()
        };
        let digits: Vec<Vec<u64>> = (0..dnum).map(|_| rand_poly()).collect();
        let keys: Vec<Vec<u64>> = (0..dnum).map(|_| rand_poly()).collect();
        let dr: Vec<&[u64]> = digits.iter().map(|d| d.as_slice()).collect();
        let kr: Vec<&[u64]> = keys.iter().map(|k| k.as_slice()).collect();
        let mut eager = vec![0u64; n];
        for i in 0..dnum {
            for s in 0..n {
                eager[s] = q.add(eager[s], q.mul(digits[i][s], keys[i][s]));
            }
        }
        let mut trace = MetaOpTrace::new();
        prop_assert_eq!(linear::decomp_poly_mult(&q, &dr, &kr, &mut trace), eager);
    }

    #[test]
    fn table_formulas_dominate_meta(dnum in 1u64..10, l in 1u64..30, k in 1u64..30) {
        // Lazy reduction never increases multiply counts for the RNS ops.
        let d = counts::decomp_poly_mult_counts(dnum, 1 << 10);
        prop_assert!(d.meta <= d.original);
        let b = counts::bconv_counts(l, k, 1 << 10);
        prop_assert!(b.meta <= b.original);
    }

    #[test]
    fn workload_counts_scale_linearly(times in 1u64..16) {
        let p = counts::CkksCountParams::paper_default().at_level(20);
        let one = counts::keyswitch(&p);
        let many = one.scaled(times);
        prop_assert_eq!(many.total_original(), one.total_original() * times);
        prop_assert_eq!(many.total_meta(), one.total_meta() * times);
    }
}
