//! The cycle-level simulator.
//!
//! A workload is a sequence of [`Step`]s; each step occupies three
//! resources — the Meta-OP core pipeline, aggregate scratchpad bandwidth,
//! and HBM bandwidth — and double buffering overlaps them, so a step's
//! latency is the maximum of its three resource times (the paper's
//! time-shared schedule with 64+2 MB of SRAM removes all other stalls,
//! §5.4). Utilization is compute-busy cycles over total cycles, reported
//! overall and per operator class (Fig. 7b).

use crate::ArchConfig;
use metaop::OpClass;

/// One scheduled step of a workload.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Step {
    /// Human-readable label (kernels print these in traces).
    pub label: String,
    /// Operator class for the utilization breakdown.
    pub class: OpClass,
    /// Total Meta-OP instances across the chip.
    pub meta_ops: u64,
    /// The Meta-OP iteration parameter `n`.
    pub n: u32,
    /// `true` for addition-only work (`Hadd`): one cycle per op, the
    /// multiplier array idles.
    pub add_only: bool,
    /// Off-chip traffic in bytes (key material, spills).
    pub hbm_bytes: u64,
    /// On-chip scratchpad traffic in bytes (reads + writes).
    pub onchip_bytes: u64,
}

impl Step {
    /// A pure compute step.
    pub fn compute(label: impl Into<String>, class: OpClass, meta_ops: u64, n: u32) -> Self {
        Step {
            label: label.into(),
            class,
            meta_ops,
            n,
            add_only: false,
            hbm_bytes: 0,
            onchip_bytes: 0,
        }
    }

    /// An addition-only step (no multiplier usage).
    pub fn adds(label: impl Into<String>, ops: u64) -> Self {
        Step {
            label: label.into(),
            class: OpClass::Elementwise,
            meta_ops: ops,
            n: 1,
            add_only: true,
            hbm_bytes: 0,
            onchip_bytes: 0,
        }
    }

    /// A pure data-movement step (DMA, transpose, automorphism shuffles).
    pub fn transfer(label: impl Into<String>, hbm_bytes: u64, onchip_bytes: u64) -> Self {
        Step {
            label: label.into(),
            class: OpClass::Transfer,
            meta_ops: 0,
            n: 1,
            add_only: true,
            hbm_bytes,
            onchip_bytes,
        }
    }

    /// Converts a functional Meta-OP trace (from the `metaop` lowerings)
    /// into simulator steps, one per aggregated `(descriptor, count)`
    /// entry — the path from *executing* an operator in software to
    /// *scheduling* it on the modeled hardware.
    pub fn from_trace(label_prefix: &str, trace: &metaop::MetaOpTrace) -> Vec<Step> {
        trace
            .entries()
            .iter()
            .enumerate()
            .map(|(i, &(op, count))| {
                Step::compute(
                    format!("{label_prefix}/{}#{i}", op.class()),
                    op.class(),
                    count,
                    op.n(),
                )
            })
            .collect()
    }

    /// Adds HBM traffic to the step.
    pub fn with_hbm(mut self, bytes: u64) -> Self {
        self.hbm_bytes += bytes;
        self
    }

    /// Adds scratchpad traffic to the step.
    pub fn with_onchip(mut self, bytes: u64) -> Self {
        self.onchip_bytes += bytes;
        self
    }

    /// Core-pipeline cycles on `arch`.
    pub fn compute_cycles(&self, arch: &ArchConfig) -> u64 {
        if self.meta_ops == 0 {
            return 0;
        }
        let per_op = if self.add_only { 1 } else { self.n as u64 + 2 };
        let waves = self.meta_ops.div_ceil(arch.total_cores() as u64);
        ((waves * per_op) as f64 / arch.pipeline_efficiency).ceil() as u64
    }

    /// Scratchpad-bandwidth cycles.
    pub fn onchip_cycles(&self, arch: &ArchConfig) -> u64 {
        (self.onchip_bytes as f64 / arch.onchip_bytes_per_cycle).ceil() as u64
    }

    /// HBM-bandwidth cycles.
    pub fn hbm_cycles(&self, arch: &ArchConfig) -> u64 {
        (self.hbm_bytes as f64 / arch.hbm_bytes_per_cycle).ceil() as u64
    }
}

/// Errors surfaced by checked simulation entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The schedule handed to [`Simulator::run_checked`] does not match its
    /// manifest: steps were dropped, duplicated, reordered, or mutated
    /// between planning and execution.
    ScheduleIntegrity {
        /// Human-readable mismatch description.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ScheduleIntegrity { detail } => {
                write!(f, "schedule integrity violation: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// An order-sensitive fingerprint of a planned schedule.
///
/// Captured once at planning time and re-checked at execution time by
/// [`Simulator::run_checked`], it detects the transfer-level fault classes
/// the fault campaign injects — dropped, duplicated, or reordered steps —
/// as well as any mutation of a step's fields. The digest folds every step
/// field through a splitmix64-style mixer, so it is order-sensitive; the
/// per-class traffic totals give mismatch messages a quick directional
/// hint (e.g. "HBM bytes shrank: a transfer was dropped").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ScheduleManifest {
    /// Number of steps in the schedule.
    pub steps: usize,
    /// Order-sensitive 64-bit digest over every field of every step.
    pub digest: u64,
    /// Total HBM bytes across all steps.
    pub hbm_bytes: u64,
    /// Total scratchpad bytes across all steps.
    pub onchip_bytes: u64,
    /// Total Meta-OP instances across all steps.
    pub meta_ops: u64,
}

/// splitmix64 finalizer: the bijective mixer used throughout the repo's
/// seeded/fingerprinting code paths.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Incremental fingerprint accumulator behind [`ScheduleManifest::of`].
///
/// Generalizes the manifest so planning layers above the simulator (e.g.
/// a service compiling request DAGs into execution plans) can fold their
/// own structured fields — op kinds, tenant parameters, slot ranges —
/// into the *same* order-sensitive digest scheme before lowering to
/// [`Step`]s, instead of inventing a second fingerprint format. Steps
/// pushed through [`push_step`](Self::push_step) produce digests
/// bit-identical to `ScheduleManifest::of`; extra [`fold_u64`]
/// (Self::fold_u64) / [`fold_bytes`](Self::fold_bytes) calls deliberately
/// diverge the digest, which is exactly what distinguishes two plans that
/// lower to the same steps but mean different things (e.g. different
/// per-request slot assignments).
#[derive(Debug, Clone)]
pub struct ManifestBuilder {
    digest: u64,
    items: usize,
    hbm_bytes: u64,
    onchip_bytes: u64,
    meta_ops: u64,
}

impl Default for ManifestBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ManifestBuilder {
    /// An empty accumulator (same seed as [`ScheduleManifest::of`]).
    pub fn new() -> Self {
        ManifestBuilder {
            digest: 0x243f_6a88_85a3_08d3, // π, arbitrary non-zero seed
            items: 0,
            hbm_bytes: 0,
            onchip_bytes: 0,
            meta_ops: 0,
        }
    }

    /// Folds one raw 64-bit word (order-sensitive).
    pub fn fold_u64(&mut self, x: u64) -> &mut Self {
        self.digest = mix64(self.digest ^ x);
        self
    }

    /// Folds a byte string, one mixer round per byte.
    pub fn fold_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for b in bytes {
            self.fold_u64(u64::from(*b));
        }
        self
    }

    /// Folds one schedule step at the next position and accumulates its
    /// traffic totals.
    pub fn push_step(&mut self, s: &Step) -> &mut Self {
        // Position is folded in explicitly so swapping two identical-
        // digest steps still changes nothing, but swapping two distinct
        // steps always does.
        self.fold_u64(self.items as u64);
        self.fold_bytes(s.label.as_bytes());
        self.fold_u64(s.class as u64);
        self.fold_u64(s.meta_ops);
        self.fold_u64(u64::from(s.n));
        self.fold_u64(u64::from(s.add_only));
        self.fold_u64(s.hbm_bytes);
        self.fold_u64(s.onchip_bytes);
        self.items += 1;
        self.hbm_bytes += s.hbm_bytes;
        self.onchip_bytes += s.onchip_bytes;
        self.meta_ops += s.meta_ops;
        self
    }

    /// The digest accumulated so far (useful as a plan fingerprint on its
    /// own, without the step totals).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Seals the accumulator into a manifest.
    pub fn finish(&self) -> ScheduleManifest {
        ScheduleManifest {
            steps: self.items,
            digest: self.digest,
            hbm_bytes: self.hbm_bytes,
            onchip_bytes: self.onchip_bytes,
            meta_ops: self.meta_ops,
        }
    }
}

impl ScheduleManifest {
    /// Fingerprints a schedule.
    pub fn of(steps: &[Step]) -> Self {
        let mut b = ManifestBuilder::new();
        for s in steps {
            b.push_step(s);
        }
        b.finish()
    }

    /// Checks a schedule against this manifest, describing the first
    /// discrepancy found.
    ///
    /// # Errors
    ///
    /// [`SimError::ScheduleIntegrity`] when the schedule was tampered with.
    pub fn check(&self, steps: &[Step]) -> Result<(), SimError> {
        let got = ScheduleManifest::of(steps);
        if got == *self {
            return Ok(());
        }
        let detail = if got.steps != self.steps {
            format!("step count changed: manifest {} vs schedule {}", self.steps, got.steps)
        } else if got.hbm_bytes != self.hbm_bytes {
            format!(
                "HBM traffic changed: manifest {} B vs schedule {} B",
                self.hbm_bytes, got.hbm_bytes
            )
        } else if got.onchip_bytes != self.onchip_bytes {
            format!(
                "scratchpad traffic changed: manifest {} B vs schedule {} B",
                self.onchip_bytes, got.onchip_bytes
            )
        } else if got.meta_ops != self.meta_ops {
            format!(
                "Meta-OP total changed: manifest {} vs schedule {}",
                self.meta_ops, got.meta_ops
            )
        } else {
            format!(
                "step order or fields changed: digest {:#018x} vs {:#018x}",
                self.digest, got.digest
            )
        };
        Err(SimError::ScheduleIntegrity { detail })
    }
}

/// Per-class accounting in a report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Cycles the cores were busy on this class.
    pub busy_cycles: u64,
    /// Wall cycles attributed to steps of this class (busy + stalls).
    pub attributed_cycles: u64,
}

/// The result of simulating a workload.
#[derive(Debug, Clone)]
pub struct SimReport {
    arch: ArchConfig,
    /// Total wall cycles.
    pub cycles: u64,
    /// Total compute-busy cycles.
    pub busy_cycles: u64,
    /// Total HBM bytes moved.
    pub hbm_bytes: u64,
    /// Total scratchpad bytes moved.
    pub onchip_bytes: u64,
    per_class: [(OpClass, ClassStats); 5],
}

impl SimReport {
    /// Wall-clock seconds at the configured frequency.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 * self.arch.cycle_seconds()
    }

    /// Overall compute-resource utilization (busy / total).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Utilization within steps of one class.
    pub fn class_utilization(&self, class: OpClass) -> f64 {
        let stats =
            self.per_class.iter().find(|(c, _)| *c == class).map(|(_, s)| *s).unwrap_or_default();
        if stats.attributed_cycles == 0 {
            0.0
        } else {
            stats.busy_cycles as f64 / stats.attributed_cycles as f64
        }
    }

    /// Fraction of wall cycles attributed to each class.
    pub fn class_time_fractions(&self) -> [(OpClass, f64); 5] {
        let total = self.cycles.max(1) as f64;
        self.per_class.map(|(c, s)| (c, s.attributed_cycles as f64 / total))
    }

    /// The architecture the report was produced on.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Operations per second if the simulated sequence covered `batch`
    /// logical operations.
    pub fn throughput(&self, batch: u64) -> f64 {
        batch as f64 / self.seconds()
    }

    /// Energy in millijoules at the configuration's average power (the
    /// paper's 77.9 W at the default configuration, scaled by active area).
    pub fn energy_mj(&self) -> f64 {
        crate::AreaModel::new(self.arch).average_power_w() * self.seconds() * 1e3
    }

    /// A human-readable multi-line summary (cycles, time, utilization,
    /// per-class split, traffic).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} cycles ({:.3} ms @ {} GHz), utilization {:.2}",
            self.cycles,
            self.seconds() * 1e3,
            self.arch.freq_ghz,
            self.utilization()
        );
        for (class, frac) in self.class_time_fractions() {
            if frac > 0.0005 {
                let _ = writeln!(
                    out,
                    "  {class:<18} {:>5.1}% of time, class utilization {:.2}",
                    frac * 100.0,
                    self.class_utilization(class)
                );
            }
        }
        let _ = writeln!(
            out,
            "  traffic: {:.1} MB HBM, {:.1} MB scratchpad",
            self.hbm_bytes as f64 / 1e6,
            self.onchip_bytes as f64 / 1e6
        );
        out
    }
}

/// The simulator.
#[derive(Debug, Clone, Copy)]
pub struct Simulator {
    arch: ArchConfig,
}

impl Simulator {
    /// Creates a simulator for a configuration.
    pub fn new(arch: ArchConfig) -> Self {
        Simulator { arch }
    }

    /// The configuration.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Runs a step sequence and produces the report.
    pub fn run(&self, steps: &[Step]) -> SimReport {
        self.run_traced(steps, &telemetry::Telemetry::disabled())
    }

    /// Runs a step sequence after verifying it against the manifest taken
    /// at planning time.
    ///
    /// # Errors
    ///
    /// [`SimError::ScheduleIntegrity`] when steps were dropped, duplicated,
    /// reordered, or mutated since the manifest was captured; nothing is
    /// simulated in that case.
    pub fn run_checked(
        &self,
        steps: &[Step],
        manifest: &ScheduleManifest,
    ) -> Result<SimReport, SimError> {
        manifest.check(steps)?;
        Ok(self.run(steps))
    }

    /// [`Self::run`] plus telemetry: one virtual-time span per step on a
    /// dedicated track (1 simulated cycle = 1 ns at 1 GHz), a `sim.run`
    /// root span whose duration equals the report's total cycle count, and
    /// counters for Meta-OPs issued, compute cycles (add-only vs
    /// multiplier), lazy-reduction savings, and HBM/scratchpad traffic.
    ///
    /// Passing a disabled handle makes this identical to [`Self::run`].
    pub fn run_traced(&self, steps: &[Step], tel: &telemetry::Telemetry) -> SimReport {
        let mut per_class = OpClass::all().map(|c| (c, ClassStats::default()));
        let mut step_cycles = 0u64;
        let mut hbm_cycles = 0u64;
        let mut busy = 0u64;
        let mut hbm = 0u64;
        let mut onchip = 0u64;
        let ns_per_cycle = self.arch.cycle_seconds() * 1e9;
        let ns = |cycles: u64| (cycles as f64 * ns_per_cycle).round() as u64;
        let mut track = tel.virtual_track();
        track.open("sim.run", 0);
        for step in steps {
            let c = step.compute_cycles(&self.arch);
            // HBM transfers are double-buffered against the whole schedule
            // (paper §5.4); compute and scratchpad traffic serialize per
            // step.
            let wall = c.max(step.onchip_cycles(&self.arch));
            if tel.is_enabled() {
                track.leaf(&step.label, ns(step_cycles), ns(wall));
                let key = step.class.telemetry_key();
                // Per-class latency distribution over the schedule, in
                // simulated nanoseconds (same 1 GHz time base as the
                // virtual track), so p50/p99 step durations land next to
                // the measured kernel histograms in every export.
                tel.observe_ns(sim_step_hist_name(key), ns(wall));
                use telemetry::Metric;
                tel.count(Metric::MetaOps, key, step.meta_ops);
                tel.count(Metric::HbmBytes, key, step.hbm_bytes);
                tel.count(Metric::ScratchpadBytes, key, step.onchip_bytes);
                if step.add_only {
                    tel.count(Metric::AddOnlyCycles, key, c);
                } else {
                    tel.count(Metric::MultCycles, key, c);
                    tel.count(
                        Metric::ReductionCyclesSaved,
                        key,
                        2 * (step.n as u64).saturating_sub(1) * step.meta_ops,
                    );
                }
            }
            step_cycles += wall;
            hbm_cycles += step.hbm_cycles(&self.arch);
            // Busy discounts pipeline bubbles (the efficiency factor).
            let eff = (c as f64 * self.arch.pipeline_efficiency) as u64;
            if tel.is_enabled() {
                // Per-class occupancy counters for the live sampler: busy
                // (post-efficiency compute) vs wall (serialized step time)
                // cycles, so a utilization-over-time series can be derived
                // from deltas alone.
                let key = step.class.telemetry_key();
                tel.count_named(sim_busy_counter_name(key), eff);
                tel.count_named(sim_wall_counter_name(key), wall);
            }
            busy += eff;
            hbm += step.hbm_bytes;
            onchip += step.onchip_bytes;
            let entry = per_class
                .iter_mut()
                .find(|(cl, _)| *cl == step.class)
                .expect("all classes present");
            entry.1.busy_cycles += eff;
            entry.1.attributed_cycles += wall;
        }
        let cycles = step_cycles.max(hbm_cycles);
        if tel.is_enabled() && cycles > step_cycles {
            // The schedule is HBM-bound: the double-buffered transfers
            // outlast compute. Make the tail visible in the trace.
            track.leaf("hbm.drain", ns(step_cycles), ns(cycles - step_cycles));
        }
        track.close(ns(cycles));
        SimReport {
            arch: self.arch,
            cycles,
            busy_cycles: busy,
            hbm_bytes: hbm,
            onchip_bytes: onchip,
            per_class,
        }
    }
}

/// Static histogram name for a simulated step class (`sim.step.<class>`).
fn sim_step_hist_name(key: telemetry::OpClassKey) -> &'static str {
    use telemetry::OpClassKey;
    match key {
        OpClassKey::Ntt => "sim.step.ntt",
        OpClassKey::Bconv => "sim.step.bconv",
        OpClassKey::DecompPolyMult => "sim.step.decomp_poly_mult",
        OpClassKey::Elementwise => "sim.step.elementwise",
        OpClassKey::Transfer => "sim.step.transfer",
    }
}

/// Static counter name for per-class busy cycles (`sim.busy_cycles.<class>`).
fn sim_busy_counter_name(key: telemetry::OpClassKey) -> &'static str {
    use telemetry::OpClassKey;
    match key {
        OpClassKey::Ntt => "sim.busy_cycles.ntt",
        OpClassKey::Bconv => "sim.busy_cycles.bconv",
        OpClassKey::DecompPolyMult => "sim.busy_cycles.decomp_poly_mult",
        OpClassKey::Elementwise => "sim.busy_cycles.elementwise",
        OpClassKey::Transfer => "sim.busy_cycles.transfer",
    }
}

/// Static counter name for per-class wall cycles (`sim.wall_cycles.<class>`).
fn sim_wall_counter_name(key: telemetry::OpClassKey) -> &'static str {
    use telemetry::OpClassKey;
    match key {
        OpClassKey::Ntt => "sim.wall_cycles.ntt",
        OpClassKey::Bconv => "sim.wall_cycles.bconv",
        OpClassKey::DecompPolyMult => "sim.wall_cycles.decomp_poly_mult",
        OpClassKey::Elementwise => "sim.wall_cycles.elementwise",
        OpClassKey::Transfer => "sim.wall_cycles.transfer",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchConfig {
        ArchConfig::paper()
    }

    #[test]
    fn compute_cycles_follow_meta_op_model() {
        let a = arch();
        // Exactly one wave of (M8A8)_3R8 on all 2048 cores: 5 cycles / eff.
        let s = Step::compute("ntt", OpClass::Ntt, 2048, 3);
        assert_eq!(s.compute_cycles(&a), (5.0f64 / a.pipeline_efficiency).ceil() as u64);
        // One op still costs a full wave.
        let one = Step::compute("x", OpClass::Ntt, 1, 3);
        assert_eq!(one.compute_cycles(&a), s.compute_cycles(&a));
        // Adds cost 1 cycle per wave.
        let adds = Step::adds("hadd", 2048);
        assert_eq!(adds.compute_cycles(&a), (1.0f64 / a.pipeline_efficiency).ceil() as u64);
    }

    #[test]
    fn memory_bound_steps_stretch_wall_time() {
        let a = arch();
        let sim = Simulator::new(a);
        let light_compute = Step::compute("k", OpClass::Bconv, 2048, 4).with_hbm(1 << 20);
        let r = sim.run(std::slice::from_ref(&light_compute));
        // 1 MiB at 1024 B/cycle = 1024 cycles ≫ compute: the run is
        // bandwidth-bound even with full overlap.
        assert_eq!(r.cycles, 1024);
        assert!(r.utilization() < 0.05);
    }

    #[test]
    fn utilization_accounting() {
        let sim = Simulator::new(arch());
        let steps = vec![
            Step::compute("ntt", OpClass::Ntt, 2048 * 100, 3),
            Step::compute("bconv", OpClass::Bconv, 2048 * 50, 12).with_hbm(4 << 20),
        ];
        let r = sim.run(&steps);
        // Class utilization tops out at the pipeline efficiency.
        let eff = arch().pipeline_efficiency;
        assert!((r.class_utilization(OpClass::Ntt) - eff).abs() < 0.02);
        assert!(r.class_utilization(OpClass::Bconv) <= eff + 0.02);
        assert!(r.seconds() > 0.0);
        assert_eq!(r.hbm_bytes, 4 << 20);
    }

    #[test]
    fn trace_conversion_matches_cost_model() {
        use metaop::{MetaOp, MetaOpTrace};
        let a = arch();
        let mut trace = MetaOpTrace::new();
        // One wave of radix-8 NTT ops + one wave of Bconv ops.
        trace.record(MetaOp::new(OpClass::Ntt, 8, 3), a.total_cores() as u64);
        trace.record(MetaOp::new(OpClass::Bconv, 8, 12), a.total_cores() as u64);
        let steps = Step::from_trace("t", &trace);
        assert_eq!(steps.len(), 2);
        let r = Simulator::new(a).run(&steps);
        let expect =
            ((5.0 / a.pipeline_efficiency).ceil() + (14.0 / a.pipeline_efficiency).ceil()) as u64;
        assert_eq!(r.cycles, expect);
    }

    #[test]
    fn transfer_steps_are_classed_as_transfer() {
        let s = Step::transfer("dma", 1 << 20, 1 << 16);
        assert_eq!(s.class, OpClass::Transfer);
        let r = Simulator::new(arch()).run(std::slice::from_ref(&s));
        // All wall time lands on the Transfer class, none on Elementwise.
        let fractions = r.class_time_fractions();
        let get = |cl: OpClass| fractions.iter().find(|(c, _)| *c == cl).unwrap().1;
        assert_eq!(get(OpClass::Elementwise), 0.0);
        assert!(get(OpClass::Transfer) > 0.0);
    }

    #[test]
    fn traced_run_spans_total_matches_cycle_count() {
        use telemetry::Telemetry;
        let sim = Simulator::new(arch());
        let steps = vec![
            Step::compute("ntt", OpClass::Ntt, 2048 * 100, 3),
            Step::transfer("dma", 8 << 20, 0),
            Step::compute("bconv", OpClass::Bconv, 2048 * 50, 12),
        ];
        let tel = Telemetry::enabled();
        let report = sim.run_traced(&steps, &tel);
        let snap = tel.snapshot();
        let spans = snap.spans();
        let root = spans.iter().find(|s| s.name == "sim.run").unwrap();
        // At the 1 GHz paper clock 1 cycle = 1 ns: the root span *is* the
        // cycle count, and child spans tile it exactly.
        assert_eq!(root.dur_ns, report.cycles);
        let child_sum: u64 = spans.iter().filter(|s| s.parent.is_some()).map(|s| s.dur_ns).sum();
        let err = (child_sum as f64 - report.cycles as f64).abs() / report.cycles as f64;
        assert!(err < 0.01, "children {child_sum} vs total {}", report.cycles);
        // This schedule is HBM-bound, so the drain filler must appear.
        assert!(spans.iter().any(|s| s.name == "hbm.drain"));
    }

    #[test]
    fn traced_run_counters_split_by_class_and_kind() {
        use telemetry::{Metric, OpClassKey, Telemetry};
        let sim = Simulator::new(arch());
        let steps = vec![
            Step::compute("ntt", OpClass::Ntt, 4096, 3),
            Step::adds("hadd", 4096),
            Step::transfer("dma", 1 << 20, 1 << 12),
        ];
        let tel = Telemetry::enabled();
        let report = sim.run_traced(&steps, &tel);
        let snap = tel.snapshot();
        assert_eq!(snap.counter(Metric::MetaOps, OpClassKey::Ntt), 4096);
        assert_eq!(snap.counter(Metric::HbmBytes, OpClassKey::Transfer), 1 << 20);
        assert_eq!(snap.counter(Metric::ScratchpadBytes, OpClassKey::Transfer), 1 << 12);
        // Hadd runs on the adder path, NTT on the multiplier path.
        assert!(snap.counter(Metric::AddOnlyCycles, OpClassKey::Elementwise) > 0);
        assert!(snap.counter(Metric::MultCycles, OpClassKey::Ntt) > 0);
        assert_eq!(snap.counter(Metric::MultCycles, OpClassKey::Elementwise), 0);
        // Lazy reduction saves 2(n-1) per Meta-OP: n = 3 → 4 per op.
        assert_eq!(snap.counter(Metric::ReductionCyclesSaved, OpClassKey::Ntt), 4 * 4096);
        // An untraced run returns the identical report.
        let plain = sim.run(&steps);
        assert_eq!(plain.cycles, report.cycles);
        assert_eq!(plain.busy_cycles, report.busy_cycles);
    }

    #[test]
    fn traced_run_records_per_step_class_histograms() {
        use telemetry::Telemetry;
        let sim = Simulator::new(arch());
        let steps = vec![
            Step::compute("ntt.a", OpClass::Ntt, 2048 * 100, 3),
            Step::compute("ntt.b", OpClass::Ntt, 2048 * 200, 3),
            Step::transfer("dma", 8 << 20, 0),
        ];
        let tel = Telemetry::enabled();
        let report = sim.run_traced(&steps, &tel);
        let snap = tel.snapshot();
        let ntt = snap.histogram("sim.step.ntt").expect("ntt step histogram");
        assert_eq!(ntt.count, 2);
        let dma = snap.histogram("sim.step.transfer").expect("transfer step histogram");
        assert_eq!(dma.count, 1);
        // Histograms use the virtual time base: the per-class sums tile the
        // step-serialized portion of the schedule (wall cycles at 1 GHz).
        let hist_sum: u64 = snap
            .histograms()
            .iter()
            .filter(|h| h.name.starts_with("sim.step."))
            .map(|h| h.sum_ns)
            .sum();
        assert!(hist_sum <= report.cycles);
        assert!(snap.histogram("sim.step.elementwise").is_none());
    }

    fn manifest_schedule() -> Vec<Step> {
        vec![
            Step::compute("ntt", OpClass::Ntt, 2048 * 4, 3),
            Step::transfer("dma.keys", 1 << 20, 1 << 14),
            Step::compute("bconv", OpClass::Bconv, 2048 * 2, 12),
            Step::transfer("dma.spill", 1 << 18, 1 << 12),
        ]
    }

    #[test]
    fn unmodified_schedule_passes_the_manifest_check() {
        let steps = manifest_schedule();
        let manifest = ScheduleManifest::of(&steps);
        let sim = Simulator::new(arch());
        let checked = sim.run_checked(&steps, &manifest).unwrap();
        assert_eq!(checked.cycles, sim.run(&steps).cycles);
        // The manifest totals mirror the schedule.
        assert_eq!(manifest.steps, 4);
        assert_eq!(manifest.hbm_bytes, (1 << 20) + (1 << 18));
    }

    #[test]
    fn manifest_builder_matches_of_bit_for_bit() {
        let steps = manifest_schedule();
        let mut b = ManifestBuilder::new();
        for s in &steps {
            b.push_step(s);
        }
        assert_eq!(b.finish(), ScheduleManifest::of(&steps));
        // Extra folded context (e.g. a plan's slot assignment) diverges
        // the digest even when the lowered steps are identical.
        let mut tagged = ManifestBuilder::new();
        tagged.fold_bytes(b"tenant=42;slots=0..32");
        for s in &steps {
            tagged.push_step(s);
        }
        assert_ne!(tagged.finish().digest, b.finish().digest);
        assert_eq!(tagged.finish().steps, steps.len());
    }

    #[test]
    fn dropped_transfer_is_detected() {
        let steps = manifest_schedule();
        let manifest = ScheduleManifest::of(&steps);
        let mut tampered = steps.clone();
        tampered.remove(1); // drop dma.keys
        let err = Simulator::new(arch()).run_checked(&tampered, &manifest).unwrap_err();
        let SimError::ScheduleIntegrity { detail } = err;
        assert!(detail.contains("step count"), "{detail}");
    }

    #[test]
    fn duplicated_transfer_is_detected() {
        let steps = manifest_schedule();
        let manifest = ScheduleManifest::of(&steps);
        let mut tampered = steps.clone();
        let dup = tampered[3].clone();
        tampered.push(dup);
        assert!(Simulator::new(arch()).run_checked(&tampered, &manifest).is_err());
    }

    #[test]
    fn reordered_transfers_are_detected() {
        let steps = manifest_schedule();
        let manifest = ScheduleManifest::of(&steps);
        let mut tampered = steps.clone();
        tampered.swap(1, 3); // same multiset of steps, different order
        let err = Simulator::new(arch()).run_checked(&tampered, &manifest).unwrap_err();
        let SimError::ScheduleIntegrity { detail } = err;
        assert!(detail.contains("order or fields"), "{detail}");
    }

    #[test]
    fn mutated_step_fields_are_detected() {
        let steps = manifest_schedule();
        let manifest = ScheduleManifest::of(&steps);
        let mut tampered = steps.clone();
        tampered[1].hbm_bytes += 1;
        assert!(manifest.check(&tampered).is_err());
        let mut relabeled = steps.clone();
        relabeled[0].label = "ntt2".into();
        assert!(manifest.check(&relabeled).is_err());
    }

    #[test]
    fn energy_tracks_time_and_power() {
        let sim = Simulator::new(arch());
        let r = sim.run(&[Step::compute("x", OpClass::Ntt, 2048 * 1000, 3)]);
        // 77.9 W for r.seconds(): E = P·t.
        let expected = 77.9 * r.seconds() * 1e3;
        assert!((r.energy_mj() - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn throughput_is_inverse_time() {
        let sim = Simulator::new(arch());
        let r = sim.run(&[Step::compute("x", OpClass::Ntt, 2048 * 1000, 3)]);
        let t = r.throughput(10);
        assert!((t - 10.0 / r.seconds()).abs() / t < 1e-12);
    }
}
