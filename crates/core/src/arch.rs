//! Hardware configuration of the Alchemist accelerator.

/// Architecture parameters (paper §5.1, Table 6 row "Alchemist").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArchConfig {
    /// Parallel computing units (paper: 128).
    pub units: usize,
    /// Cores per unit, each executing one Meta-OP at a time (paper: 16).
    pub cores_per_unit: usize,
    /// Multiplier/adder lanes per core — the Meta-OP `j` (paper: 8).
    pub lanes: usize,
    /// Clock frequency in GHz (paper: 1.0).
    pub freq_ghz: f64,
    /// RNS word width in bits (paper adopts SHARP's 36).
    pub word_bits: u32,
    /// Local scratchpad per unit in KiB (paper: 512).
    pub scratchpad_kib: usize,
    /// Shared memory in KiB (paper: 2048 = 2 MB).
    pub shared_kib: usize,
    /// Off-chip (HBM2 ×2) bandwidth in bytes per cycle (paper: 1 TB/s at
    /// 1 GHz = 1024 B/cycle).
    pub hbm_bytes_per_cycle: f64,
    /// Aggregate on-chip scratchpad bandwidth in bytes per cycle (paper
    /// Table 6: 66 TB/s → 67 584 B/cycle).
    pub onchip_bytes_per_cycle: f64,
    /// Fraction of peak the core pipeline sustains (scheduling bubbles,
    /// bank conflicts). Calibrated so overall utilization on the Fig. 7b
    /// workloads lands near the paper's ≈0.86.
    pub pipeline_efficiency: f64,
}

impl ArchConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        ArchConfig {
            units: 128,
            cores_per_unit: 16,
            lanes: 8,
            freq_ghz: 1.0,
            word_bits: 36,
            scratchpad_kib: 512,
            shared_kib: 2048,
            hbm_bytes_per_cycle: 1024.0,
            onchip_bytes_per_cycle: 67_584.0,
            pipeline_efficiency: 0.92,
        }
    }

    /// Total Meta-OP cores.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.units * self.cores_per_unit
    }

    /// Total multiplier lanes.
    #[inline]
    pub fn total_lanes(&self) -> usize {
        self.total_cores() * self.lanes
    }

    /// Bytes per stored RNS word (36-bit words are packed; 4.5 bytes).
    #[inline]
    pub fn word_bytes(&self) -> f64 {
        self.word_bits as f64 / 8.0
    }

    /// Total on-chip storage in KiB (`units × scratchpad + shared`,
    /// paper: 64 + 2 MB).
    #[inline]
    pub fn total_sram_kib(&self) -> usize {
        self.units * self.scratchpad_kib + self.shared_kib
    }

    /// Seconds per cycle.
    #[inline]
    pub fn cycle_seconds(&self) -> f64 {
        1e-9 / self.freq_ghz
    }

    /// Validates the configuration for simulation (positive resources,
    /// sane efficiency).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.units == 0 || self.cores_per_unit == 0 || self.lanes == 0 {
            return Err("units, cores and lanes must be positive".into());
        }
        if self.freq_ghz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        if self.hbm_bytes_per_cycle <= 0.0 || self.onchip_bytes_per_cycle <= 0.0 {
            return Err("bandwidths must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.pipeline_efficiency) || self.pipeline_efficiency == 0.0 {
            return Err("pipeline efficiency must be in (0, 1]".into());
        }
        if self.word_bits == 0 || self.word_bits > 61 {
            return Err("word width must be in [1, 61] bits".into());
        }
        Ok(())
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_degenerate_configs() {
        assert!(ArchConfig::paper().validate().is_ok());
        let mut bad = ArchConfig::paper();
        bad.units = 0;
        assert!(bad.validate().is_err());
        let mut bad = ArchConfig::paper();
        bad.pipeline_efficiency = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = ArchConfig::paper();
        bad.word_bits = 64;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn paper_config_matches_table6() {
        let a = ArchConfig::paper();
        assert_eq!(a.total_cores(), 2048);
        assert_eq!(a.total_lanes(), 16_384);
        // 64 MB local + 2 MB shared = 66 MB on-chip capacity.
        assert_eq!(a.total_sram_kib(), 66 * 1024);
        // 1 TB/s at 1 GHz.
        assert!((a.hbm_bytes_per_cycle - 1024.0).abs() < 1e-9);
        assert!((a.word_bytes() - 4.5).abs() < 1e-12);
    }
}
