//! Design-space exploration and ablations (paper §5.4).
//!
//! Three sweeps back the design choices DESIGN.md calls out:
//!
//! * **lane width `j`** — radix-8 NTT butterflies cannot fill more than 8
//!   lanes, so `j = 16` wastes half the multipliers on NTT work while
//!   `j = 4` doubles every op's issue count; `j = 8` maximizes
//!   performance per area (the paper's conclusion, §4.2);
//! * **unit count** — perf/area across 64/128/256 units;
//! * **data partitioning** — slot-based (the paper's choice: all three
//!   access patterns are unit-local) vs channel-based (base conversion
//!   becomes all-to-all through the transpose fabric).

use crate::workloads::{bootstrapping, CkksSimParams};
use crate::{ArchConfig, AreaModel, Simulator, Step};
use metaop::OpClass;

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// Configuration label.
    pub label: String,
    /// Die area.
    pub area_mm2: f64,
    /// Bootstrapping latency in seconds.
    pub seconds: f64,
    /// Overall utilization.
    pub utilization: f64,
}

impl DsePoint {
    /// Performance per area (1 / (s · mm²)), the paper's ranking metric.
    pub fn perf_per_area(&self) -> f64 {
        1.0 / (self.seconds * self.area_mm2)
    }
}

/// The point with the best performance per area, or `None` for an empty
/// sweep. Library callers (report generators, config pickers) must handle
/// the empty case instead of unwrapping: a filtered sweep — say, "points
/// under 100 mm²" — can legitimately come back empty.
pub fn best_point(points: &[DsePoint]) -> Option<&DsePoint> {
    points.iter().max_by(|a, b| a.perf_per_area().total_cmp(&b.perf_per_area()))
}

/// The (area, latency) Pareto front: points no other point beats on both
/// axes. Empty input yields an empty front; ties survive on both sides.
pub fn pareto_front(points: &[DsePoint]) -> Vec<&DsePoint> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| q.area_mm2 < p.area_mm2 && q.seconds < p.seconds))
        .collect()
}

/// Rescales a step sequence for a different lane width `j`.
///
/// Non-NTT Meta-OPs process `j` coefficients per op, so op counts scale by
/// `8/j`; NTT radix-8 butterflies span exactly 8 lanes, so wider cores gain
/// nothing there (`max(1, 8/j)`).
fn rescale_for_lanes(steps: &[Step], j: usize) -> Vec<Step> {
    steps
        .iter()
        .cloned()
        .map(|mut s| {
            let factor = match s.class {
                OpClass::Ntt => (8.0 / j as f64).max(1.0),
                _ => 8.0 / j as f64,
            };
            s.meta_ops = ((s.meta_ops as f64) * factor).ceil() as u64;
            s
        })
        .collect()
}

/// Sweeps the Meta-OP lane width over the bootstrapping workload.
pub fn lane_sweep() -> Vec<DsePoint> {
    lane_sweep_over(&[4, 8, 16])
}

/// [`lane_sweep`] over caller-chosen lane widths. An empty slice yields an
/// empty sweep rather than panicking downstream.
pub fn lane_sweep_over(lanes: &[usize]) -> Vec<DsePoint> {
    let p = CkksSimParams::paper();
    let base = bootstrapping(&p);
    lanes
        .iter()
        .copied()
        .map(|j| {
            let mut arch = ArchConfig::paper();
            arch.lanes = j;
            let steps = rescale_for_lanes(&base, j);
            let r = Simulator::new(arch).run(&steps);
            DsePoint {
                label: format!("j={j}"),
                area_mm2: AreaModel::new(arch).total_mm2(),
                seconds: r.seconds(),
                utilization: r.utilization(),
            }
        })
        .collect()
}

/// Sweeps the computing-unit count over the bootstrapping workload.
pub fn unit_sweep() -> Vec<DsePoint> {
    unit_sweep_over(&[64, 128, 256])
}

/// [`unit_sweep`] over caller-chosen unit counts (empty-safe like
/// [`lane_sweep_over`]).
pub fn unit_sweep_over(unit_counts: &[usize]) -> Vec<DsePoint> {
    let p = CkksSimParams::paper();
    let base = bootstrapping(&p);
    unit_counts
        .iter()
        .copied()
        .map(|units| {
            let mut arch = ArchConfig::paper();
            arch.units = units;
            // On-chip bandwidth scales with the unit count.
            arch.onchip_bytes_per_cycle = 67_584.0 * units as f64 / 128.0;
            let r = Simulator::new(arch).run(&base);
            DsePoint {
                label: format!("units={units}"),
                area_mm2: AreaModel::new(arch).total_mm2(),
                seconds: r.seconds(),
                utilization: r.utilization(),
            }
        })
        .collect()
}

/// Compares slot-based partitioning (paper §5.3) with channel-based
/// partitioning, where every base conversion becomes an all-to-all exchange
/// through the transpose fabric (modeled at 1/16 of aggregate scratchpad
/// bandwidth, the transpose register file's share).
pub fn partitioning_ablation() -> Vec<DsePoint> {
    let p = CkksSimParams::paper();
    let arch = ArchConfig::paper();
    let base = bootstrapping(&p);

    let slot = Simulator::new(arch).run(&base);
    let mut points = vec![DsePoint {
        label: "slot-based".into(),
        area_mm2: AreaModel::new(arch).total_mm2(),
        seconds: slot.seconds(),
        utilization: slot.utilization(),
    }];

    // Channel-based: every Bconv / DecompPolyMult step additionally routes
    // its operands across units.
    let fabric_bpc = arch.onchip_bytes_per_cycle / 16.0;
    let channel_steps: Vec<Step> = base
        .iter()
        .cloned()
        .map(|s| {
            if matches!(s.class, OpClass::Bconv | OpClass::DecompPolyMult) {
                let extra =
                    (s.onchip_bytes as f64 * arch.onchip_bytes_per_cycle / fabric_bpc) as u64;
                s.with_onchip(extra)
            } else {
                s
            }
        })
        .collect();
    let chan = Simulator::new(arch).run(&channel_steps);
    points.push(DsePoint {
        label: "channel-based".into(),
        area_mm2: AreaModel::new(arch).total_mm2(),
        seconds: chan.seconds(),
        utilization: chan.utilization(),
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_lanes_win_perf_per_area() {
        let points = lane_sweep();
        let best = best_point(&points).unwrap();
        assert_eq!(best.label, "j=8", "paper's DSE picks j = 8: {points:?}");
    }

    #[test]
    fn empty_sweeps_are_safe() {
        assert!(lane_sweep_over(&[]).is_empty());
        assert!(unit_sweep_over(&[]).is_empty());
        assert!(best_point(&[]).is_none());
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        let p = |label: &str, area: f64, s: f64| DsePoint {
            label: label.into(),
            area_mm2: area,
            seconds: s,
            utilization: 0.5,
        };
        let points = vec![
            p("small-slow", 100.0, 2.0),
            p("big-fast", 200.0, 1.0),
            p("dominated", 250.0, 2.5),
        ];
        let front = pareto_front(&points);
        let labels: Vec<&str> = front.iter().map(|d| d.label.as_str()).collect();
        assert_eq!(labels, ["small-slow", "big-fast"]);
    }

    #[test]
    fn unit_sweep_monotone_area() {
        let points = unit_sweep();
        assert!(points[0].area_mm2 < points[1].area_mm2);
        assert!(points[1].area_mm2 < points[2].area_mm2);
        // More units should not slow the workload down.
        assert!(points[2].seconds <= points[1].seconds * 1.05);
    }

    #[test]
    fn slot_partitioning_beats_channel_partitioning() {
        let points = partitioning_ablation();
        assert_eq!(points[0].label, "slot-based");
        assert!(points[0].seconds < points[1].seconds, "slot-based must be faster: {points:?}");
        assert!(points[0].utilization > points[1].utilization);
    }
}
