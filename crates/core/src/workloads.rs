//! Workload compiler: FHE operations → simulator step sequences.
//!
//! Builders mirror the operator graphs of the functional libraries
//! (`fhe-ckks` / `fhe-tfhe`) at the paper's parameters. Key-material
//! traffic follows the paper's time-sharing scheduling claim (§5.4):
//!
//! * **single operations** (Table 7's `Keyswitch`/`Cmult`/`Rotation`)
//!   stream their evaluation key from HBM — this is what makes those ops
//!   land near 7.1–7.2 kops/s instead of the compute-bound 12 kops/s;
//! * **batched workloads** (bootstrapping, HELR, Fig. 7b) reuse each
//!   switching key across the transform applications that share it
//!   ([`KEY_REUSE_BATCHED`]) or keep it resident across training
//!   iterations (HELR), per the BTS/FAB-style schedule the paper adopts.
//!
//! All structural constants are recorded in `EXPERIMENTS.md`.

use crate::sim::Step;
use metaop::OpClass;

/// Intra-workload reuse factor for switching keys in batched transforms:
/// a key fetched once serves the four CoeffToSlot/SlotToCoeff transform
/// applications, the conjugate path, and the baby-step offsets repeated
/// across layers (BTS/FAB-style time-shared schedule).
pub const KEY_REUSE_BATCHED: u64 = 16;

/// Bytes per RNS word (36-bit packed).
const WB: f64 = 4.5;

/// CKKS parameters for the simulator (mirrors
/// `metaop::counts::CkksCountParams`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CkksSimParams {
    /// Ring degree `N`.
    pub n: u64,
    /// Maximum level `L`.
    pub l_max: u64,
    /// Current level.
    pub level: u64,
    /// Decomposition number.
    pub dnum: u64,
}

impl CkksSimParams {
    /// The paper's Table 7 operating point: `N = 2^16, L = 44, dnum = 4`.
    pub fn paper() -> Self {
        CkksSimParams { n: 1 << 16, l_max: 44, level: 44, dnum: 4 }
    }

    /// Same parameters at another level.
    pub fn at_level(&self, level: u64) -> Self {
        CkksSimParams { level, ..*self }
    }

    /// Digit size / special-modulus count.
    pub fn alpha(&self) -> u64 {
        (self.l_max + 1).div_ceil(self.dnum)
    }

    /// Channels at the current level.
    pub fn c(&self) -> u64 {
        self.level + 1
    }

    /// Occupied digits at the current level.
    pub fn beta(&self) -> u64 {
        self.c().div_ceil(self.alpha())
    }

    /// Extended basis size `c + K`.
    pub fn t(&self) -> u64 {
        self.c() + self.alpha()
    }

    /// Bytes of one polynomial over `channels` RNS channels.
    pub fn poly_bytes(&self, channels: u64) -> u64 {
        (channels as f64 * self.n as f64 * WB) as u64
    }

    /// Bytes of one switching key (beta digits × 2 polys × t channels).
    pub fn switch_key_bytes(&self) -> u64 {
        self.beta() * 2 * self.poly_bytes(self.t())
    }
}

/// Radix-8/radix-4 block counts of the Meta-OP NTT schedule.
fn ntt_blocks(n: u64) -> (u64, u64) {
    let log_n = n.trailing_zeros() as u64;
    match log_n % 3 {
        0 => (log_n / 3, 0),
        1 => ((log_n - 4) / 3, 2),
        _ => ((log_n - 2) / 3, 1),
    }
}

/// NTT or INTT of `channels` polynomials of degree `n` (same cost either
/// direction).
pub fn ntt_steps(n: u64, channels: u64, label: &str) -> Vec<Step> {
    let (r8, r4) = ntt_blocks(n);
    let per_block_traffic = (2.0 * channels as f64 * n as f64 * WB) as u64;
    let mut steps = Vec::new();
    if r8 > 0 {
        steps.push(
            Step::compute(format!("{label}/ntt-r8"), OpClass::Ntt, channels * (n / 8) * r8, 3)
                .with_onchip(per_block_traffic * r8),
        );
    }
    if r4 > 0 {
        steps.push(
            Step::compute(format!("{label}/ntt-r4"), OpClass::Ntt, channels * (n / 8) * r4, 2)
                .with_onchip(per_block_traffic * r4),
        );
    }
    steps
}

/// Element-wise modular multiplications over `coeffs` coefficients.
pub fn elementwise_steps(coeffs: u64, label: &str) -> Step {
    Step::compute(label.to_string(), OpClass::Elementwise, coeffs / 8, 1)
        .with_onchip((3.0 * coeffs as f64 * WB) as u64)
}

/// `Pmult`: plaintext × ciphertext, both on-chip (Table 7 convention).
pub fn pmult(p: &CkksSimParams) -> Vec<Step> {
    vec![elementwise_steps(2 * p.c() * p.n, "pmult")]
}

/// `Hadd`: addition-array only.
pub fn hadd(p: &CkksSimParams) -> Vec<Step> {
    // 3 scratchpad accesses per coefficient stream (2 reads + 1 write),
    // counted over both ciphertext polynomials.
    let coeffs = 2 * p.c() * p.n;
    vec![Step::adds("hadd", coeffs / 8).with_onchip((3.0 * coeffs as f64 * WB) as u64)]
}

/// Hybrid key switch of one polynomial; `stream_key` charges the full
/// switching key to HBM (single-op mode).
pub fn keyswitch_steps(p: &CkksSimParams, stream_key: bool, label: &str) -> Vec<Step> {
    let (n, c, alpha, beta, t) = (p.n, p.c(), p.alpha(), p.beta(), p.t());
    let k = alpha;
    let mut steps = Vec::new();
    steps.extend(ntt_steps(n, c, &format!("{label}/intt-in")));
    steps.push(elementwise_steps(beta * alpha * n, &format!("{label}/modup-prescale")));
    steps.push(
        Step::compute(
            format!("{label}/modup-bconv"),
            OpClass::Bconv,
            beta * (t - alpha) * (n / 8),
            alpha as u32,
        )
        .with_onchip(((beta * alpha + beta * (t - alpha)) as f64 * n as f64 * WB) as u64),
    );
    steps.extend(ntt_steps(n, beta * (t - alpha), &format!("{label}/ntt-ext")));
    let mut mac = Step::compute(
        format!("{label}/decomp-poly-mult"),
        OpClass::DecompPolyMult,
        2 * t * (n / 8),
        beta as u32,
    )
    .with_onchip(((beta * t + 2 * t) as f64 * n as f64 * WB) as u64);
    if stream_key {
        mac = mac.with_hbm(p.switch_key_bytes());
    }
    steps.push(mac);
    steps.extend(ntt_steps(n, 2 * t, &format!("{label}/intt-ext")));
    steps.push(elementwise_steps(2 * k * n, &format!("{label}/moddown-prescale")));
    steps.push(
        Step::compute(format!("{label}/moddown-bconv"), OpClass::Bconv, 2 * c * (n / 8), k as u32)
            .with_onchip(((2 * k + 2 * c) as f64 * n as f64 * WB) as u64),
    );
    steps.push(elementwise_steps(2 * c * n, &format!("{label}/moddown-scale")));
    steps.extend(ntt_steps(n, 2 * c, &format!("{label}/ntt-out")));
    steps
}

/// Rescale of a 2-polynomial ciphertext.
pub fn rescale_steps(p: &CkksSimParams, label: &str) -> Vec<Step> {
    let (n, c) = (p.n, p.c());
    let mut steps = Vec::new();
    steps.extend(ntt_steps(n, 2, &format!("{label}/rescale-intt")));
    steps.extend(ntt_steps(n, 2 * (c - 1), &format!("{label}/rescale-ntt")));
    steps.push(elementwise_steps(2 * (c - 1) * n, &format!("{label}/rescale-scale")));
    steps
}

/// `Cmult`: tensor + relinearization + rescale (Table 7 row).
pub fn cmult(p: &CkksSimParams) -> Vec<Step> {
    let mut steps = vec![elementwise_steps(4 * p.c() * p.n, "cmult/tensor")];
    steps.extend(keyswitch_steps(p, true, "cmult/relin"));
    steps.push(Step::adds("cmult/combine", 2 * p.c() * p.n / 8));
    steps.extend(rescale_steps(p, "cmult"));
    steps
}

/// `Keyswitch` as a standalone Table 7 row.
pub fn keyswitch(p: &CkksSimParams) -> Vec<Step> {
    keyswitch_steps(p, true, "keyswitch")
}

/// `Rotation`: automorphism + key switch (Table 7 row).
pub fn rotation(p: &CkksSimParams) -> Vec<Step> {
    let mut steps = vec![Step::transfer(
        "rotation/automorphism",
        0,
        (4.0 * p.c() as f64 * p.n as f64 * WB) as u64,
    )];
    steps.extend(keyswitch_steps(p, true, "rotation/ks"));
    steps
}

/// A hoisted rotation group (`BSP-L=n+` pattern): one shared
/// decomposition + Modup, per-rotation `DecompPolyMult`, one closing
/// Moddown. `key_reuse` divides per-rotation key traffic
/// ([`KEY_REUSE_BATCHED`] for batched transforms; `u64::MAX`-like large
/// values model fully resident keys).
pub fn hoisted_rotation_group(p: &CkksSimParams, n_rot: u64, key_reuse: u64) -> Vec<Step> {
    let (n, c, alpha, beta, t) = (p.n, p.c(), p.alpha(), p.beta(), p.t());
    let k = alpha;
    let mut steps = Vec::new();
    // Shared modup.
    steps.extend(ntt_steps(n, c, "hoist/intt-in"));
    steps.push(elementwise_steps(beta * alpha * n, "hoist/modup-prescale"));
    steps.push(
        Step::compute(
            "hoist/modup-bconv",
            OpClass::Bconv,
            beta * (t - alpha) * (n / 8),
            alpha as u32,
        )
        .with_onchip(((beta * alpha + beta * (t - alpha)) as f64 * n as f64 * WB) as u64),
    );
    steps.extend(ntt_steps(n, beta * (t - alpha), "hoist/ntt-ext"));
    // Per-rotation work, aggregated so the simulator overlaps the key
    // stream across the whole group: automorphism shuffles plus one
    // DecompPolyMult per rotation with that rotation's key.
    let key_bytes = n_rot * p.switch_key_bytes() / key_reuse.max(1);
    steps.push(Step::transfer(
        "hoist/automorphisms",
        0,
        (2.0 * n_rot as f64 * beta as f64 * t as f64 * n as f64 * WB) as u64,
    ));
    steps.push(
        Step::compute(
            "hoist/decomp-poly-mult",
            OpClass::DecompPolyMult,
            n_rot * 2 * t * (n / 8),
            beta as u32,
        )
        .with_hbm(key_bytes)
        .with_onchip((n_rot as f64 * (beta * t + 2 * t) as f64 * n as f64 * WB) as u64),
    );
    // Accumulate in the extended basis, one closing INTT + Moddown.
    steps.push(Step::adds("hoist/accumulate", n_rot * 2 * t * n / 8));
    steps.extend(ntt_steps(n, 2 * t, "hoist/intt-close"));
    steps.push(elementwise_steps(2 * k * n, "hoist/moddown-prescale"));
    steps.push(
        Step::compute("hoist/moddown-bconv", OpClass::Bconv, 2 * c * (n / 8), k as u32)
            .with_onchip(((2 * k + 2 * c) as f64 * n as f64 * WB) as u64),
    );
    steps.push(elementwise_steps(2 * c * n, "hoist/moddown-scale"));
    steps.extend(ntt_steps(n, 2 * c, "hoist/ntt-out"));
    steps
}

/// Fully-packed CKKS bootstrapping (Fig. 6a / Fig. 7b workload): the same
/// 6-layer double-hoisted graph as `metaop::counts::bootstrapping`, with
/// batched key reuse.
pub fn bootstrapping(p: &CkksSimParams) -> Vec<Step> {
    let mut steps = Vec::new();
    let cts = [p.l_max, p.l_max - 1, p.l_max - 2];
    let stc = [p.l_max.saturating_sub(20), p.l_max.saturating_sub(21), p.l_max.saturating_sub(22)];
    for &lvl in cts.iter().chain(&stc) {
        let pl = p.at_level(lvl);
        for _ in 0..2 {
            steps.extend(hoisted_rotation_group(&pl, 24, KEY_REUSE_BATCHED));
        }
        // Diagonal plaintext multiplications of the BSGS combination.
        steps.push(elementwise_steps(64 * 2 * pl.c() * pl.n, "boot/diag-pmult"));
    }
    // EvalMod: ~10 Cmults mid-chain with the relinearization key resident.
    let mid = p.at_level(p.l_max.saturating_sub(10));
    for i in 0..10 {
        steps.push(elementwise_steps(4 * mid.c() * mid.n, &format!("boot/evalmod{i}/tensor")));
        steps.extend(keyswitch_steps(&mid, false, &format!("boot/evalmod{i}/relin")));
        steps.extend(rescale_steps(&mid, &format!("boot/evalmod{i}")));
    }
    steps
}

/// HELR-1024: one logistic-regression training iteration (Fig. 6a). The
/// design matrix transforms keep their keys resident across the training
/// loop, per the time-sharing schedule.
pub fn helr_iteration(p: &CkksSimParams) -> Vec<Step> {
    let resident = u64::MAX / 2; // effectively free key traffic
    let mut steps = Vec::new();
    // X·w.
    steps.extend(hoisted_rotation_group(p, 32, resident));
    steps.push(elementwise_steps(32 * 2 * p.c() * p.n, "helr/xw-diag"));
    // σ3(u): two Cmults + one Pmult.
    let lvl = p.at_level(p.level.saturating_sub(1));
    for i in 0..2 {
        steps.push(elementwise_steps(4 * lvl.c() * lvl.n, &format!("helr/sig{i}/tensor")));
        steps.extend(keyswitch_steps(&lvl, false, &format!("helr/sig{i}/relin")));
        steps.extend(rescale_steps(&lvl, &format!("helr/sig{i}")));
    }
    steps.push(elementwise_steps(2 * lvl.c() * lvl.n, "helr/sig-pmult"));
    // Xᵀ·resid.
    let low = p.at_level(p.level.saturating_sub(3));
    steps.extend(hoisted_rotation_group(&low, 32, resident));
    steps.push(elementwise_steps(32 * 2 * low.c() * low.n, "helr/xt-diag"));
    steps.push(Step::adds("helr/update", 2 * low.c() * low.n / 8));
    steps
}

/// LoLa-MNIST inference (Fig. 6a): shallow network at reduced parameters.
/// Returns the parameter set used together with the steps.
pub fn lola_mnist(encrypted_weights: bool) -> (CkksSimParams, Vec<Step>) {
    let p = CkksSimParams { n: 1 << 14, l_max: 7, level: 7, dnum: 2 };
    let mut steps = Vec::new();
    // Single-shot inference: rotation keys stream cold (reuse = 1).
    // Convolution layer: 13 hoisted rotations + per-window products.
    steps.extend(hoisted_rotation_group(&p, 13, 1));
    if encrypted_weights {
        // Encrypted weights: products are ciphertext × ciphertext.
        for i in 0..8 {
            let pl = p.at_level(7 - (i % 2));
            steps.push(elementwise_steps(4 * pl.c() * pl.n, &format!("lola/conv{i}/tensor")));
            steps.extend(keyswitch_steps(&pl, false, &format!("lola/conv{i}/relin")));
        }
    } else {
        steps.push(elementwise_steps(13 * 2 * p.c() * p.n, "lola/conv-pmult"));
    }
    // Square activation.
    let p1 = p.at_level(6);
    steps.push(elementwise_steps(4 * p1.c() * p1.n, "lola/sq1/tensor"));
    steps.extend(keyswitch_steps(&p1, false, "lola/sq1/relin"));
    steps.extend(rescale_steps(&p1, "lola/sq1"));
    // Dense layer: 13 more rotations + products, second square, output.
    let p2 = p.at_level(5);
    steps.extend(hoisted_rotation_group(&p2, 13, 1));
    steps.push(elementwise_steps(13 * 2 * p2.c() * p2.n, "lola/fc-pmult"));
    let p3 = p.at_level(4);
    steps.push(elementwise_steps(4 * p3.c() * p3.n, "lola/sq2/tensor"));
    steps.extend(keyswitch_steps(&p3, false, "lola/sq2/relin"));
    steps.extend(rescale_steps(&p3, "lola/sq2"));
    steps.push(elementwise_steps(10 * 2 * p3.c() * p3.n, "lola/output"));
    (p, steps)
}

/// TFHE parameters for the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TfheSimParams {
    /// GLWE polynomial degree.
    pub n_poly: u64,
    /// LWE dimension (blind-rotation steps).
    pub lwe_dim: u64,
    /// GLWE dimension `k`.
    pub k_glwe: u64,
    /// TRGSW levels.
    pub lb: u64,
    /// Key-switch levels.
    pub ks_levels: u64,
    /// CRT limbs representing the 64-bit torus on the word-sized datapath.
    pub limbs: u64,
}

impl TfheSimParams {
    /// Set I (Matcha/Concrete-style).
    pub fn set_i() -> Self {
        TfheSimParams { n_poly: 1024, lwe_dim: 630, k_glwe: 1, lb: 3, ks_levels: 3, limbs: 2 }
    }

    /// Set II (Strix-style).
    pub fn set_ii() -> Self {
        TfheSimParams { n_poly: 2048, lwe_dim: 742, k_glwe: 1, lb: 2, ks_levels: 4, limbs: 2 }
    }

    /// Bootstrap-key bytes (prepared NTT-domain rows).
    pub fn bsk_bytes(&self) -> u64 {
        (self.lwe_dim * (self.k_glwe + 1) * self.lb * (self.k_glwe + 1) * self.n_poly * self.limbs)
            * 8
    }
}

/// A batch of TFHE programmable bootstrappings. The bootstrap key streams
/// once per batch (Strix-style two-level batching).
pub fn tfhe_pbs(tp: &TfheSimParams, batch: u64) -> Vec<Step> {
    let kp1 = tp.k_glwe + 1;
    let n = tp.n_poly;
    let ch_per_step = kp1 * tp.lb * tp.limbs; // digit channels to transform
    let mut steps = Vec::new();
    // Blind rotation: aggregate the per-step CMux work across the batch.
    let cmux_count = tp.lwe_dim * batch;
    let mut fwd = ntt_steps(n, ch_per_step * cmux_count, "pbs/cmux-ntt");
    if let Some(first) = fwd.first_mut() {
        // Stream the bootstrap key once per batch.
        first.hbm_bytes += tp.bsk_bytes();
    }
    steps.extend(fwd);
    steps.push(Step::compute(
        "pbs/cmux-mac",
        OpClass::DecompPolyMult,
        kp1 * tp.limbs * (n / 8) * cmux_count,
        (kp1 * tp.lb) as u32,
    ));
    steps.extend(ntt_steps(n, kp1 * tp.limbs * cmux_count, "pbs/cmux-intt"));
    steps.push(Step::adds("pbs/cmux-combine", cmux_count * kp1 * n / 8));
    // LWE key switch: a long lazily-reduced MAC per bootstrap.
    let ks_terms = n * tp.ks_levels;
    let outputs = tp.lwe_dim + 1;
    steps.push(Step::compute(
        "pbs/keyswitch",
        OpClass::Elementwise,
        outputs * ks_terms.div_ceil(64) * batch,
        64,
    ));
    steps
}

/// Fully-packed bootstrapping *without* Modup hoisting — the operator
/// graph a pre-hoisting design (BTS) executes: every rotation pays a full
/// key switch. Used to model such baselines fairly.
pub fn bootstrapping_unhoisted(p: &CkksSimParams) -> Vec<Step> {
    let mut steps = Vec::new();
    let cts = [p.l_max, p.l_max - 1, p.l_max - 2];
    let stc = [p.l_max.saturating_sub(20), p.l_max.saturating_sub(21), p.l_max.saturating_sub(22)];
    for &lvl in cts.iter().chain(&stc) {
        let pl = p.at_level(lvl);
        for r in 0..48u32 {
            steps.extend(keyswitch_steps(&pl, false, &format!("boot/rot{r}")));
        }
        steps.push(elementwise_steps(64 * 2 * pl.c() * pl.n, "boot/diag-pmult"));
    }
    let mid = p.at_level(p.l_max.saturating_sub(10));
    for i in 0..10 {
        steps.push(elementwise_steps(4 * mid.c() * mid.n, &format!("boot/evalmod{i}/tensor")));
        steps.extend(keyswitch_steps(&mid, false, &format!("boot/evalmod{i}/relin")));
        steps.extend(rescale_steps(&mid, &format!("boot/evalmod{i}")));
    }
    steps
}

/// LoLa-MNIST without hoisting (full key switch per rotation) — the graph
/// a pre-hoisting design (F1) executes.
pub fn lola_mnist_unhoisted(encrypted_weights: bool) -> (CkksSimParams, Vec<Step>) {
    let p = CkksSimParams { n: 1 << 14, l_max: 7, level: 7, dnum: 2 };
    let mut steps = Vec::new();
    for r in 0..13u32 {
        steps.extend(keyswitch_steps(&p, false, &format!("lola/conv-rot{r}")));
    }
    if encrypted_weights {
        for i in 0..8 {
            let pl = p.at_level(7 - (i % 2));
            steps.push(elementwise_steps(4 * pl.c() * pl.n, &format!("lola/conv{i}/tensor")));
            steps.extend(keyswitch_steps(&pl, false, &format!("lola/conv{i}/relin")));
        }
    } else {
        steps.push(elementwise_steps(13 * 2 * p.c() * p.n, "lola/conv-pmult"));
    }
    let p1 = p.at_level(6);
    steps.push(elementwise_steps(4 * p1.c() * p1.n, "lola/sq1/tensor"));
    steps.extend(keyswitch_steps(&p1, false, "lola/sq1/relin"));
    steps.extend(rescale_steps(&p1, "lola/sq1"));
    let p2 = p.at_level(5);
    for r in 0..13u32 {
        steps.extend(keyswitch_steps(&p2, false, &format!("lola/fc-rot{r}")));
    }
    steps.push(elementwise_steps(13 * 2 * p2.c() * p2.n, "lola/fc-pmult"));
    let p3 = p.at_level(4);
    steps.push(elementwise_steps(4 * p3.c() * p3.n, "lola/sq2/tensor"));
    steps.extend(keyswitch_steps(&p3, false, "lola/sq2/relin"));
    steps.extend(rescale_steps(&p3, "lola/sq2"));
    steps.push(elementwise_steps(10 * 2 * p3.c() * p3.n, "lola/output"));
    (p, steps)
}

/// A cross-scheme pipeline: CKKS Cmults interleaved with TFHE PBS batches
/// on the same hardware — the paper's motivating scenario.
pub fn cross_scheme(p: &CkksSimParams, tp: &TfheSimParams, rounds: usize) -> Vec<Step> {
    let mut steps = Vec::new();
    for _ in 0..rounds {
        steps.extend(cmult(p));
        steps.extend(tfhe_pbs(tp, 16));
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchConfig, Simulator};

    fn sim() -> Simulator {
        Simulator::new(ArchConfig::paper())
    }

    #[test]
    fn table7_pmult_hadd_band() {
        let p = CkksSimParams::paper();
        let s = sim();
        // Paper: Pmult 946,970/s, Hadd 710,227/s — accept ±35%.
        let pm = 1.0 / s.run(&pmult(&p)).seconds();
        assert!((600_000.0..1_400_000.0).contains(&pm), "Pmult {pm}/s");
        let ha = 1.0 / s.run(&hadd(&p)).seconds();
        assert!((450_000.0..1_100_000.0).contains(&ha), "Hadd {ha}/s");
    }

    #[test]
    fn table7_keyswitch_band_is_memory_bound() {
        let p = CkksSimParams::paper();
        let s = sim();
        // Paper: Keyswitch 7,246/s; Cmult 7,143/s; Rotation 7,179/s.
        let ks = 1.0 / s.run(&keyswitch(&p)).seconds();
        assert!((5_000.0..11_000.0).contains(&ks), "Keyswitch {ks}/s");
        let cm = 1.0 / s.run(&cmult(&p)).seconds();
        assert!((5_000.0..10_000.0).contains(&cm), "Cmult {cm}/s");
        let rot = 1.0 / s.run(&rotation(&p)).seconds();
        assert!((5_000.0..10_000.0).contains(&rot), "Rotation {rot}/s");
        // Ordering: Cmult is the slowest of the three.
        assert!(cm <= ks && cm <= rot);
    }

    #[test]
    fn bootstrapping_lands_in_millisecond_band() {
        let p = CkksSimParams::paper();
        let r = sim().run(&bootstrapping(&p));
        let ms = r.seconds() * 1e3;
        assert!((0.5..6.0).contains(&ms), "bootstrap {ms} ms");
        // Fig. 7b: overall utilization ≈ 0.86.
        assert!(r.utilization() > 0.70, "boot utilization {}", r.utilization());
    }

    #[test]
    fn helr_iteration_band_and_utilization() {
        let p = CkksSimParams::paper();
        let r = sim().run(&helr_iteration(&p));
        let ms = r.seconds() * 1e3;
        assert!((0.1..2.5).contains(&ms), "HELR {ms} ms");
        assert!(r.utilization() > 0.70, "HELR utilization {}", r.utilization());
    }

    #[test]
    fn lola_mnist_sub_millisecond() {
        let (_, enc) = lola_mnist(true);
        let (_, unenc) = lola_mnist(false);
        let t_enc = sim().run(&enc).seconds() * 1e3;
        let t_unenc = sim().run(&unenc).seconds() * 1e3;
        // Paper: 0.11 ms with encrypted weights.
        assert!((0.02..0.5).contains(&t_enc), "LoLa enc {t_enc} ms");
        assert!(t_unenc <= t_enc, "unencrypted weights must not be slower");
    }

    #[test]
    fn tfhe_pbs_throughput_band() {
        let s = sim();
        for (tp, label) in [(TfheSimParams::set_i(), "I"), (TfheSimParams::set_ii(), "II")] {
            let batch = 128;
            let r = s.run(&tfhe_pbs(&tp, batch));
            let per_sec = batch as f64 / r.seconds();
            // The paper's comparison space: Matcha ~10-20k/s, Strix tens of k/s,
            // Alchemist claims ~7x average — expect tens of thousands per second.
            assert!((20_000.0..400_000.0).contains(&per_sec), "PBS set {label}: {per_sec}/s");
        }
    }

    #[test]
    fn hoisting_reduces_bootstrap_work() {
        let p = CkksSimParams::paper();
        let s = sim();
        let hoisted = s.run(&bootstrapping(&p)).seconds();
        let unhoisted = s.run(&bootstrapping_unhoisted(&p)).seconds();
        assert!(
            unhoisted > 2.0 * hoisted,
            "hoisting should cut bootstrap time substantially: {unhoisted} vs {hoisted}"
        );
    }

    #[test]
    fn cross_scheme_keeps_high_utilization() {
        let r = sim().run(&cross_scheme(
            &CkksSimParams::paper().at_level(24),
            &TfheSimParams::set_i(),
            3,
        ));
        assert!(r.utilization() > 0.4, "cross-scheme utilization {}", r.utilization());
    }

    #[test]
    fn key_bytes_match_hand_calculation() {
        let p = CkksSimParams::paper();
        // beta=4 digits × 2 polys × t=57 channels × 65536 × 4.5 B ≈ 134 MB.
        let expect = 4 * 2 * 57 * 65536 * 9 / 2;
        assert_eq!(p.switch_key_bytes(), expect);
    }
}
