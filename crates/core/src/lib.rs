//! The Alchemist accelerator: architecture model, cycle-level simulator,
//! workload compiler, area/power model and design-space exploration.
//!
//! This is the paper's primary artifact (§5–6): a unified architecture of
//! 128 computing units × 16 cores, each core executing one Meta-OP
//! `(M_8 A_8)_n R_8` in `n + 2` cycles with the Barrett reduction reusing
//! the multiplier array. Slot-based data partitioning keeps all three
//! access patterns (Table 4) inside a unit's private scratchpad, so the
//! simulator models three resources per step — core pipeline, scratchpad
//! bandwidth, HBM bandwidth — overlapped by double buffering.
//!
//! * [`ArchConfig`] — the hardware configuration (paper defaults:
//!   `128 × 16 × 8` lanes, 512 KB scratchpads + 2 MB shared, 1 TB/s HBM,
//!   1 GHz, 36-bit words),
//! * [`AreaModel`] — the Table 5 area/power breakdown,
//! * [`Step`] / [`Simulator`] / [`SimReport`] — the cycle model,
//! * [`workloads`] — compilers from FHE operations (Table 7 basic ops,
//!   Fig. 6 applications, TFHE PBS) to step sequences,
//! * [`layout`] — the slot-based data partition and an audited
//!   distributed 4-step NTT proving the zero-inter-unit-traffic claim
//!   (§5.3, Table 4),
//! * [`dse`] — lane-width / unit-count / partitioning ablations (§5.4).
//!
//! # Example
//!
//! ```
//! use alchemist_core::{workloads::CkksSimParams, Simulator, ArchConfig};
//!
//! let arch = ArchConfig::paper();
//! let sim = Simulator::new(arch);
//! let params = CkksSimParams::paper();
//! let report = sim.run(&alchemist_core::workloads::cmult(&params));
//! assert!(report.cycles > 0);
//! println!("Cmult: {} cycles, utilization {:.2}", report.cycles, report.utilization());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod area;
pub mod dse;
pub mod layout;
mod sim;
pub mod workloads;

pub use arch::ArchConfig;
pub use area::{AreaModel, COMPONENT_AREAS_MM2};
pub use layout::{DistributedFourStepNtt, SlotLayout};
pub use sim::{ManifestBuilder, ScheduleManifest, SimError, SimReport, Simulator, Step};
