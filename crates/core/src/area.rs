//! Area and power model (paper Table 5).
//!
//! The paper synthesized RTL in a commercial 14 nm process (Design
//! Compiler + CACTI). We reproduce the *model*: per-component area
//! constants taken from Table 5, composed structurally so that
//! configuration sweeps (unit count, SRAM size) scale the right terms —
//! the substitution is recorded in DESIGN.md §3.

use crate::ArchConfig;

/// Per-component area constants in mm² (14 nm), from paper Table 5.
///
/// `(component, unit area, paper quantity)`.
pub const COMPONENT_AREAS_MM2: &[(&str, f64, usize)] = &[
    ("core", 0.043, 2048),
    ("local_sram_512k", 0.427, 128),
    ("transpose_register_file", 6.380, 1),
    ("shared_memory_2m", 1.801, 1),
    ("hbm2_phy_pair", 29.801, 1),
];

/// Structural area/power model.
#[derive(Debug, Clone, Copy)]
pub struct AreaModel {
    arch: ArchConfig,
}

impl AreaModel {
    /// Builds the model for a configuration.
    pub fn new(arch: ArchConfig) -> Self {
        AreaModel { arch }
    }

    /// Area of one Meta-OP core.
    pub fn core_mm2(&self) -> f64 {
        // Table 5 gives the 8-lane core; scale linearly in lane count.
        0.043 * self.arch.lanes as f64 / 8.0
    }

    /// Area of one local scratchpad (CACTI-style linear-in-capacity).
    pub fn local_sram_mm2(&self) -> f64 {
        0.427 * self.arch.scratchpad_kib as f64 / 512.0
    }

    /// One computing unit: core cluster + local scratchpad + control
    /// (the paper's 1.118 = 16×0.043 + 0.427 + glue).
    pub fn computing_unit_mm2(&self) -> f64 {
        let glue = 1.118 - (16.0 * 0.043 + 0.427);
        self.arch.cores_per_unit as f64 * self.core_mm2() + self.local_sram_mm2() + glue
    }

    /// Transpose register file (scales with unit count relative to 128).
    pub fn transpose_mm2(&self) -> f64 {
        6.380 * self.arch.units as f64 / 128.0
    }

    /// Shared memory.
    pub fn shared_memory_mm2(&self) -> f64 {
        1.801 * self.arch.shared_kib as f64 / 2048.0
    }

    /// Memory interface (2× HBM2 PHYs; scales with bandwidth).
    pub fn memory_interface_mm2(&self) -> f64 {
        29.801 * self.arch.hbm_bytes_per_cycle / 1024.0
    }

    /// Total die area.
    pub fn total_mm2(&self) -> f64 {
        self.arch.units as f64 * self.computing_unit_mm2()
            + self.transpose_mm2()
            + self.shared_memory_mm2()
            + self.memory_interface_mm2()
    }

    /// Average power in watts (paper: 77.9 W at the default config; scaled
    /// by active silicon area).
    pub fn average_power_w(&self) -> f64 {
        77.9 * self.total_mm2() / 181.086
    }

    /// The Table 5 breakdown rows: `(label, quantity, unit mm², total mm²)`.
    pub fn breakdown(&self) -> Vec<(String, usize, f64, f64)> {
        let units = self.arch.units;
        let cores = self.arch.cores_per_unit;
        vec![
            (
                format!("1x Core Cluster ({cores}x CORE)"),
                cores,
                self.core_mm2(),
                cores as f64 * self.core_mm2(),
            ),
            ("1x Local SRAM".into(), 1, self.local_sram_mm2(), self.local_sram_mm2()),
            (
                "1x Computing Unit (Core Cluster + Local SRAM)".into(),
                1,
                self.computing_unit_mm2(),
                self.computing_unit_mm2(),
            ),
            (
                format!("{units}x Computing Unit"),
                units,
                self.computing_unit_mm2(),
                units as f64 * self.computing_unit_mm2(),
            ),
            ("Register file for transpose".into(), 1, self.transpose_mm2(), self.transpose_mm2()),
            ("Shared memory".into(), 1, self.shared_memory_mm2(), self.shared_memory_mm2()),
            (
                "Memory interface (2x HBM2 PHYs)".into(),
                1,
                self.memory_interface_mm2(),
                self.memory_interface_mm2(),
            ),
            ("Total".into(), 1, self.total_mm2(), self.total_mm2()),
        ]
    }

    /// The `Total` row of a [`breakdown`](Self::breakdown)-shaped table,
    /// if present. Library consumers of row sets that may have been
    /// filtered or truncated use this instead of `rows.last().unwrap()`.
    pub fn breakdown_total(rows: &[(String, usize, f64, f64)]) -> Option<f64> {
        rows.last().map(|row| row.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_reproduced() {
        let m = AreaModel::new(ArchConfig::paper());
        assert!((m.core_mm2() - 0.043).abs() < 1e-9);
        assert!((m.local_sram_mm2() - 0.427).abs() < 1e-9);
        assert!((m.computing_unit_mm2() - 1.118).abs() < 1e-6);
        let units_total = 128.0 * m.computing_unit_mm2();
        assert!((units_total - 143.104).abs() < 1e-3, "got {units_total}");
        assert!((m.total_mm2() - 181.086).abs() < 0.01, "got {}", m.total_mm2());
        assert!((m.average_power_w() - 77.9).abs() < 0.1);
    }

    #[test]
    fn area_scales_with_configuration() {
        let mut arch = ArchConfig::paper();
        arch.units = 64;
        let m = AreaModel::new(arch);
        assert!(m.total_mm2() < 181.0 / 1.5, "halving units should shrink the die");
        let mut wide = ArchConfig::paper();
        wide.lanes = 16;
        let w = AreaModel::new(wide);
        assert!(w.total_mm2() > 181.0, "doubling lanes should grow the die");
    }

    #[test]
    fn breakdown_totals_consistent() {
        let m = AreaModel::new(ArchConfig::paper());
        let rows = m.breakdown();
        let total = AreaModel::breakdown_total(&rows).unwrap();
        assert!((total - m.total_mm2()).abs() < 1e-9);
        assert_eq!(AreaModel::breakdown_total(&[]), None);
    }
}
