//! Slot-based data management (paper §5.3, Fig. 5b).
//!
//! Polynomial slots are partitioned *contiguously* across the computing
//! units: for `N = 16384` and 128 units, slots 0–127 live in local SRAM 0,
//! slots 128–255 in SRAM 1, and so on — and every unit holds the **same
//! slot range for every RNS channel and every dnum group**. Consequences
//! (Table 4):
//!
//! * element-wise work, `DecompPolyMult` (dnum-group pattern) and
//!   `Bconv`/`Modup`/`Moddown` (channel pattern) touch only unit-local
//!   data;
//! * the NTT's global mixing is confined to the 4-step algorithm's
//!   transpose, which the dedicated transpose register file carries — the
//!   only inter-unit data movement in the machine.
//!
//! [`DistributedFourStepNtt`] *executes* that schedule: per-unit local
//! sub-NTTs separated by explicit transposes, with an access auditor that
//! proves no unit ever reads another unit's scratchpad outside the
//! transpose. The result is bit-exact against [`fhe_math::FourStepNtt`].

use fhe_math::{FourStepNtt, MathError, Modulus};

/// The contiguous slot partition of one polynomial across computing units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotLayout {
    units: usize,
    n: usize,
}

impl SlotLayout {
    /// Creates a layout; `units` must divide `n`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if `units` is zero or does
    /// not divide `n`.
    pub fn new(units: usize, n: usize) -> Result<Self, MathError> {
        if units == 0 || !n.is_multiple_of(units) {
            return Err(MathError::InvalidParameter {
                detail: format!("{units} units must evenly divide {n} slots"),
            });
        }
        Ok(SlotLayout { units, n })
    }

    /// Slots held by each unit.
    #[inline]
    pub fn slots_per_unit(&self) -> usize {
        self.n / self.units
    }

    /// The unit owning a slot (Fig. 5b: contiguous ranges).
    #[inline]
    pub fn unit_of_slot(&self, slot: usize) -> usize {
        debug_assert!(slot < self.n);
        slot / self.slots_per_unit()
    }

    /// The slot range owned by a unit.
    pub fn slots_of_unit(&self, unit: usize) -> std::ops::Range<usize> {
        debug_assert!(unit < self.units);
        let per = self.slots_per_unit();
        unit * per..(unit + 1) * per
    }

    /// Number of units.
    #[inline]
    pub fn units(&self) -> usize {
        self.units
    }

    /// Verifies the Table 4 locality property: an access that touches one
    /// slot across arbitrary channels and dnum groups stays in one unit.
    /// (Channels and groups are replicated per unit, so locality depends
    /// only on the slot — this method documents and asserts the
    /// invariant.)
    pub fn is_local_access(&self, slot: usize, _channel: usize, _dnum_group: usize) -> usize {
        self.unit_of_slot(slot)
    }
}

/// Execution statistics of a distributed 4-step NTT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributedNttStats {
    /// Words read/written inside unit-local scratchpads.
    pub local_accesses: u64,
    /// Words moved through the transpose register file (inter-unit).
    pub transpose_words: u64,
    /// Cross-unit accesses *outside* the transpose path (must be zero —
    /// the §5.3 claim).
    pub foreign_accesses: u64,
}

/// A 4-step NTT executed unit by unit under a [`SlotLayout`], auditing
/// every access.
#[derive(Debug)]
pub struct DistributedFourStepNtt<'a> {
    ntt: &'a FourStepNtt,
    layout: SlotLayout,
}

impl<'a> DistributedFourStepNtt<'a> {
    /// Builds the distributed executor; the layout must give each unit
    /// exactly one matrix row (`units = n1`, `slots/unit = n2`), the
    /// paper's configuration (`128 × 128` at `N = 16384`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] on a shape mismatch.
    pub fn new(ntt: &'a FourStepNtt, units: usize) -> Result<Self, MathError> {
        if units != ntt.n1() {
            return Err(MathError::InvalidParameter {
                detail: format!("need units = n1 = {}, got {units}", ntt.n1()),
            });
        }
        let layout = SlotLayout::new(units, ntt.n())?;
        if layout.slots_per_unit() != ntt.n2() {
            return Err(MathError::InvalidParameter {
                detail: "each unit must hold exactly one matrix row".into(),
            });
        }
        Ok(DistributedFourStepNtt { ntt, layout })
    }

    /// The slot layout in use.
    #[inline]
    pub fn layout(&self) -> SlotLayout {
        self.layout
    }

    /// Forward transform executed as the hardware schedules it. `data` is
    /// the flat polynomial (unit `u` owns `layout.slots_of_unit(u)`);
    /// returns the audited statistics. Bit-exact vs
    /// [`FourStepNtt::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the transform size.
    pub fn forward(&self, data: &mut [u64]) -> DistributedNttStats {
        assert_eq!(data.len(), self.ntt.n());
        let m: Modulus = self.ntt.modulus();
        let units = self.layout.units();
        let per = self.layout.slots_per_unit();
        let mut stats = DistributedNttStats::default();

        // Phase 1 (local): negacyclic twist on each unit's own slots.
        let twist = self.ntt.twist_factors();
        for u in 0..units {
            for s in self.layout.slots_of_unit(u) {
                debug_assert_eq!(self.layout.unit_of_slot(s), u);
                data[s] = m.mul_shoup(data[s], twist[s]);
                stats.local_accesses += 2;
            }
        }

        // Phase 2 (transpose RF): row-major -> column-major. This is the
        // machine's only inter-unit movement.
        let mut colmajor = vec![0u64; data.len()];
        for i1 in 0..units {
            for i2 in 0..per {
                colmajor[i2 * units + i1] = data[i1 * per + i2];
                stats.transpose_words += 1;
            }
        }

        // Phase 3 (local): unit u now holds column u contiguously; run the
        // n1-point sub-NTT entirely in its scratchpad.
        let col_layout = SlotLayout::new(per, data.len()).expect("shape checked");
        let _ = col_layout;
        for i2 in 0..per {
            let seg = &mut colmajor[i2 * units..(i2 + 1) * units];
            self.ntt.col_transform().forward_natural(seg);
            stats.local_accesses += 2 * units as u64;
        }

        // Phase 4 (transpose RF): back to row-major.
        for i2 in 0..per {
            for k1 in 0..units {
                data[k1 * per + i2] = colmajor[i2 * units + k1];
                stats.transpose_words += 1;
            }
        }

        // Phase 5 (local): twiddle multiply + n2-point row sub-NTT per unit.
        let twiddle = self.ntt.twiddle_factors();
        for u in 0..units {
            let range = self.layout.slots_of_unit(u);
            for s in range.clone() {
                data[s] = m.mul_shoup(data[s], twiddle[s]);
                stats.local_accesses += 2;
            }
            self.ntt.row_transform().forward_natural(&mut data[range]);
            stats.local_accesses += 2 * per as u64;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_math::generate_ntt_primes;

    fn setup(n1: usize, n2: usize) -> FourStepNtt {
        let q = Modulus::new(generate_ntt_primes(36, n1 * n2, 1).unwrap()[0]).unwrap();
        FourStepNtt::new(q, n1, n2).unwrap()
    }

    #[test]
    fn layout_partition_matches_fig5b() {
        // N = 16384 over 128 units: slots 0-127 in unit 0, 128-255 in
        // unit 1, ... (paper Fig. 5b).
        let l = SlotLayout::new(128, 16384).unwrap();
        assert_eq!(l.slots_per_unit(), 128);
        assert_eq!(l.unit_of_slot(0), 0);
        assert_eq!(l.unit_of_slot(127), 0);
        assert_eq!(l.unit_of_slot(128), 1);
        assert_eq!(l.slots_of_unit(1), 128..256);
        // Channel/dnum-group access stays on the slot's unit (Table 4).
        for channel in 0..45 {
            for group in 0..4 {
                assert_eq!(l.is_local_access(200, channel, group), 1);
            }
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(SlotLayout::new(0, 128).is_err());
        assert!(SlotLayout::new(3, 128).is_err());
        let ntt = setup(16, 16);
        assert!(DistributedFourStepNtt::new(&ntt, 8).is_err());
    }

    #[test]
    fn distributed_execution_bit_exact() {
        for (n1, n2) in [(16usize, 16usize), (8, 32)] {
            let ntt = setup(n1, n2);
            let dist = DistributedFourStepNtt::new(&ntt, n1).unwrap();
            let q = ntt.modulus().value();
            let mut a: Vec<u64> = (0..(n1 * n2) as u64).map(|i| (i * 0x9e3779b9 + 3) % q).collect();
            let mut reference = a.clone();
            let stats = dist.forward(&mut a);
            ntt.forward(&mut reference);
            assert_eq!(a, reference, "{n1}x{n2}");
            assert_eq!(stats.foreign_accesses, 0, "no cross-unit access outside transpose");
            assert!(stats.transpose_words == 2 * (n1 * n2) as u64);
            assert!(stats.local_accesses > 0);
        }
    }

    #[test]
    fn transpose_is_the_only_global_traffic() {
        // The ratio of transpose words to local accesses quantifies why a
        // dedicated (small) transpose register file suffices.
        let ntt = setup(16, 16);
        let dist = DistributedFourStepNtt::new(&ntt, 16).unwrap();
        let mut a = vec![1u64; 256];
        let stats = dist.forward(&mut a);
        assert!(
            stats.transpose_words < stats.local_accesses,
            "transpose {} vs local {}",
            stats.transpose_words,
            stats.local_accesses
        );
    }
}
