//! A minimal arbitrary-precision unsigned integer.
//!
//! The RNS algebra in this crate (CRT reconstruction, `Bconv`, `Modup`,
//! `Moddown`) is verified against exact integer arithmetic. Pulling in a
//! full bignum dependency for that would be overkill, so [`UBig`] implements
//! just the operations the verification paths need: addition, subtraction,
//! comparison, multiplication by a word, full multiplication, division and
//! remainder (by word and by bignum) and bit shifts.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer stored as little-endian `u64`
/// limbs with no trailing zero limbs (zero is the empty limb vector).
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// The value zero.
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Creates a big integer from a single word.
    pub fn from_u64(value: u64) -> Self {
        if value == 0 {
            Self::zero()
        } else {
            UBig { limbs: vec![value] }
        }
    }

    /// Creates a big integer from a 128-bit value.
    pub fn from_u128(value: u128) -> Self {
        let lo = value as u64;
        let hi = (value >> 64) as u64;
        let mut limbs = vec![lo, hi];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// The low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// The low 128 bits of the value.
    pub fn low_u128(&self) -> u128 {
        let lo = self.limbs.first().copied().unwrap_or(0) as u128;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
        lo | (hi << 64)
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Adds `other` to `self`, returning the sum.
    pub fn add(&self, other: &UBig) -> UBig {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = self.limbs.get(i).copied().unwrap_or(0) as u128;
            let b = other.limbs.get(i).copied().unwrap_or(0) as u128;
            let s = a + b + carry as u128;
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = UBig { limbs: out };
        r.trim();
        r
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (this type is unsigned).
    pub fn sub(&self, other: &UBig) -> UBig {
        assert!(self.cmp_big(other) != Ordering::Less, "UBig::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i128;
            let b = other.limbs.get(i).copied().unwrap_or(0) as i128;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        let mut r = UBig { limbs: out };
        r.trim();
        r
    }

    /// Three-way comparison (named to avoid clashing with `Ord::cmp`; the
    /// `Ord` impl delegates here).
    pub fn cmp_big(&self, other: &UBig) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Multiplies by a single word.
    pub fn mul_u64(&self, factor: u64) -> UBig {
        if factor == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &limb in &self.limbs {
            let p = limb as u128 * factor as u128 + carry;
            out.push(p as u64);
            carry = p >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        UBig { limbs: out }
    }

    /// Full product of two big integers (schoolbook; verification sizes are
    /// small so quadratic cost is fine).
    pub fn mul(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = UBig { limbs: out };
        r.trim();
        r
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: u32) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = UBig { limbs: out };
        r.trim();
        r
    }

    /// Divides by a single word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem_u64(&self, divisor: u64) -> (UBig, u64) {
        assert!(divisor != 0, "division by zero");
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        let mut q = UBig { limbs: quotient };
        q.trim();
        (q, rem as u64)
    }

    /// Remainder modulo a single word.
    pub fn rem_u64(&self, divisor: u64) -> u64 {
        self.divrem_u64(divisor).1
    }

    /// Remainder modulo another big integer (shift-and-subtract long
    /// division; verification-only path).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem_big(&self, modulus: &UBig) -> UBig {
        assert!(!modulus.is_zero(), "division by zero");
        if self.cmp_big(modulus) == Ordering::Less {
            return self.clone();
        }
        let mut rem = self.clone();
        let shift = self.bits() - modulus.bits();
        for s in (0..=shift).rev() {
            let shifted = modulus.shl(s);
            if rem.cmp_big(&shifted) != Ordering::Less {
                rem = rem.sub(&shifted);
            }
        }
        rem
    }

    /// Product of an iterator of words — handy for computing RNS basis
    /// products `Q = ∏ q_i` exactly.
    pub fn product_of(words: impl IntoIterator<Item = u64>) -> UBig {
        let mut acc = UBig::one();
        for w in words {
            acc = acc.mul_u64(w);
        }
        acc
    }

    /// Approximates the value as `f64` (loses precision beyond 53 bits;
    /// used by CKKS decoding where the significant part is small).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 18_446_744_073_709_551_616.0 + limb as f64;
        }
        acc
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for UBig {
    fn from(value: u64) -> Self {
        UBig::from_u64(value)
    }
}

impl From<u128> for UBig {
    fn from(value: u128) -> Self {
        UBig::from_u128(value)
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut parts = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u64(CHUNK);
            parts.push(r);
            cur = q;
        }
        write!(f, "{}", parts.last().unwrap())?;
        for part in parts.iter().rev().skip(1) {
            write!(f, "{part:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_round_trip() {
        let a = UBig::from_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        let b = UBig::from_u128(0x0fed_cba9_8765_4321_8877_6655_4433_2211);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_cafe_u64;
        let b = 0x1234_5678_9abc_u64;
        let exact = a as u128 * b as u128;
        assert_eq!(UBig::from_u64(a).mul_u64(b), UBig::from_u128(exact));
        assert_eq!(UBig::from_u64(a).mul(&UBig::from_u64(b)), UBig::from_u128(exact));
    }

    #[test]
    fn divrem_u64_matches_u128() {
        let x = 0x1234_5678_9abc_def0_1122_3344_5566_7788_u128;
        let d = 0x1_0000_0001_u64;
        let (q, r) = UBig::from_u128(x).divrem_u64(d);
        assert_eq!(q, UBig::from_u128(x / d as u128));
        assert_eq!(r, (x % d as u128) as u64);
    }

    #[test]
    fn rem_big_small_cases() {
        let a = UBig::from_u128(1 << 100);
        let m = UBig::from_u64(1_000_003);
        let r = a.rem_big(&m);
        // 2^100 mod 1_000_003 computed independently via modpow.
        let mut acc: u64 = 1;
        for _ in 0..100 {
            acc = (acc * 2) % 1_000_003;
        }
        assert_eq!(r, UBig::from_u64(acc));
    }

    #[test]
    fn display_decimal() {
        assert_eq!(UBig::zero().to_string(), "0");
        assert_eq!(UBig::from_u64(12345).to_string(), "12345");
        let big = UBig::from_u64(u64::MAX).mul_u64(u64::MAX);
        assert_eq!(big.to_string(), "340282366920938463426481119284349108225");
    }

    #[test]
    fn shl_matches_u128() {
        let a = UBig::from_u64(0xabcd);
        assert_eq!(a.shl(77), UBig::from_u128((0xabcd_u128) << 77));
    }

    #[test]
    fn product_of_words() {
        let p = UBig::product_of([3, 5, 7]);
        assert_eq!(p, UBig::from_u64(105));
    }
}
