//! Montgomery modular multiplication — the interleaved alternative to
//! Barrett reduction the paper's modular-reduction citation covers
//! (Knežević et al. [12]).
//!
//! The Alchemist core realizes its lazy `R_j` step with Barrett (two extra
//! multiplications on the reused multiplier array); [`MontgomeryContext`]
//! provides the same operations in the Montgomery domain so the
//! `bench/kernels` suite can compare the two reduction dataflows on this
//! machine, mirroring the design-space discussion.

use crate::{MathError, Modulus};

/// Precomputed Montgomery constants for an odd modulus `q < 2^61`
/// (R = 2^64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontgomeryContext {
    modulus: Modulus,
    /// `-q^{-1} mod 2^64`.
    neg_q_inv: u64,
    /// `R^2 mod q`, for conversions into the domain.
    r2: u64,
}

impl MontgomeryContext {
    /// Builds the context.
    ///
    /// # Errors
    ///
    /// Propagates [`Modulus::new`]'s validation (odd, `< 2^61`).
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), fhe_math::MathError> {
    /// use fhe_math::{Modulus, MontgomeryContext};
    /// let q = Modulus::new(65537)?;
    /// let mont = MontgomeryContext::new(q)?;
    /// let a = mont.to_montgomery(1234);
    /// let b = mont.to_montgomery(5678);
    /// let p = mont.from_montgomery(mont.mul(a, b));
    /// assert_eq!(p, q.mul(1234, 5678));
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(modulus: Modulus) -> Result<Self, MathError> {
        let q = modulus.value();
        // Newton iteration for q^{-1} mod 2^64 (q odd).
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(q.wrapping_mul(inv)));
        }
        crate::strict_assert_eq!(
            q.wrapping_mul(inv),
            1,
            "Newton iteration failed to invert q={q} mod 2^64"
        );
        let r2 = modulus.reduce_u128(((1u128 << 64) % q as u128).pow(2));
        Ok(MontgomeryContext { modulus, neg_q_inv: inv.wrapping_neg(), r2 })
    }

    /// The underlying modulus.
    #[inline]
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// Montgomery reduction of a 128-bit value `x < q·2^64`:
    /// returns `x·2^{-64} mod q`.
    #[inline]
    pub fn reduce(&self, x: u128) -> u64 {
        let q = self.modulus.value();
        let m = (x as u64).wrapping_mul(self.neg_q_inv);
        let t = ((x + m as u128 * q as u128) >> 64) as u64;
        if t >= q {
            t - q
        } else {
            t
        }
    }

    /// Converts a canonical residue into the Montgomery domain
    /// (`a ↦ a·2^64 mod q`).
    #[inline]
    pub fn to_montgomery(&self, a: u64) -> u64 {
        crate::strict_assert!(
            a < self.modulus.value(),
            "non-canonical operand to MontgomeryContext::to_montgomery: a={a}"
        );
        self.reduce(a as u128 * self.r2 as u128)
    }

    /// Converts back to a canonical residue.
    #[inline]
    pub fn from_montgomery(&self, a: u64) -> u64 {
        self.reduce(a as u128)
    }

    /// Multiplies two Montgomery-domain values (result stays in domain).
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.reduce(a as u128 * b as u128)
    }

    /// Montgomery-domain addition (same as canonical addition).
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        self.modulus.add(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ntt_primes;

    fn contexts() -> Vec<MontgomeryContext> {
        [36u32, 50, 60]
            .iter()
            .map(|&bits| {
                let q = Modulus::new(generate_ntt_primes(bits, 64, 1).unwrap()[0]).unwrap();
                MontgomeryContext::new(q).unwrap()
            })
            .collect()
    }

    #[test]
    fn round_trip_and_products_match_barrett() {
        for mont in contexts() {
            let q = mont.modulus();
            for (a, b) in [(0u64, 0u64), (1, 1), (q.value() - 1, q.value() - 1), (12345, 9876543)] {
                let (a, b) = (q.reduce(a), q.reduce(b));
                assert_eq!(mont.from_montgomery(mont.to_montgomery(a)), a);
                let p =
                    mont.from_montgomery(mont.mul(mont.to_montgomery(a), mont.to_montgomery(b)));
                assert_eq!(p, q.mul(a, b), "q = {}", q.value());
            }
        }
    }

    #[test]
    fn repeated_products_stay_in_domain() {
        let mont = &contexts()[0];
        let q = mont.modulus();
        let x = q.reduce(0xdead_beef);
        let mut dom = mont.to_montgomery(x);
        let mut expect = x;
        for _ in 0..32 {
            dom = mont.mul(dom, mont.to_montgomery(x));
            expect = q.mul(expect, x);
        }
        assert_eq!(mont.from_montgomery(dom), expect);
    }

    #[test]
    fn addition_consistency() {
        let mont = &contexts()[1];
        let q = mont.modulus();
        let (a, b) = (q.reduce(111), q.reduce(q.value() - 5));
        let s = mont.from_montgomery(mont.add(mont.to_montgomery(a), mont.to_montgomery(b)));
        assert_eq!(s, q.add(a, b));
    }
}
