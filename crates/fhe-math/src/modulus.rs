//! Word-sized modular arithmetic with Barrett and Shoup multiplication.
//!
//! This is the scalar arithmetic the Alchemist core performs in hardware:
//! plain multiplies and adds accumulated *lazily* in wide registers, with a
//! single Barrett reduction at the end of a Meta-OP — the reduction itself
//! being two more multiplications on the reused multiplier array
//! (paper §5.2, Fig. 5d).

use crate::MathError;

/// Maximum supported modulus width in bits.
///
/// With `q < 2^61`, a product is below `2^122` and a lazy sum of up to
/// `j = 8` (even up to 64) products still fits in a `u128` accumulator, which
/// mirrors the paper's lazy-reduction argument for the Meta-OP.
///
/// The bound also guarantees that [`Modulus::add`] cannot wrap: the sum of
/// two canonical operands stays below `2^62`, so plain `u64` addition is
/// exact. Widening the limit past 63 bits would silently reintroduce that
/// overflow — [`Modulus::new`] rejects such moduli with an explicit
/// [`MathError::InvalidModulus`] instead.
pub const MAX_MODULUS_BITS: u32 = 61;

/// A prime (or at least odd) modulus `q < 2^61` with precomputed Barrett
/// constants.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_math::MathError> {
/// let q = fhe_math::Modulus::new(0x7fffffff)?; // 2^31 - 1
/// let a = q.mul(123456789, 987654321);
/// assert_eq!(a, (123456789u128 * 987654321u128 % 0x7fffffffu128) as u64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// floor(2^128 / q), used for Barrett reduction of 128-bit products.
    ratio: u128,
    bits: u32,
}

impl Modulus {
    /// Creates a modulus with precomputed Barrett constants.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidModulus`] if `value < 2`, `value` is even
    /// (all FHE moduli here are odd primes), or `value ≥ 2^61`.
    pub fn new(value: u64) -> Result<Self, MathError> {
        if value < 2 {
            return Err(MathError::InvalidModulus { value, reason: "must be at least 2" });
        }
        if value.is_multiple_of(2) {
            return Err(MathError::InvalidModulus { value, reason: "must be odd" });
        }
        let bits = 64 - value.leading_zeros();
        if bits > MAX_MODULUS_BITS {
            return Err(MathError::InvalidModulus {
                value,
                reason: "wider than 61 bits; lazy accumulation and the overflow-free \
                         `add` (a + b < 2^62) invariants would break",
            });
        }
        // ratio = floor(2^128 / q). Split 2^128 = (a*q + r) * 2^64 with
        // a = floor(2^64/q), r = 2^64 mod q, so ratio = a*2^64 + floor(r*2^64/q).
        let a = (1u128 << 64) / value as u128;
        let r = (1u128 << 64) % value as u128;
        let ratio = (a << 64) + ((r << 64) / value as u128);
        Ok(Modulus { value, ratio, bits })
    }

    /// The modulus value `q`.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Bit width of `q`.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Reduces an arbitrary `u64` into `[0, q)`.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        self.reduce_u128(a as u128)
    }

    /// Barrett-reduces a 128-bit value into `[0, q)`.
    ///
    /// This is the `R` step of the Meta-OP: one high multiplication by the
    /// precomputed ratio, one low multiplication by `q`, then at most two
    /// conditional subtractions.
    #[inline]
    pub fn reduce_u128(&self, a: u128) -> u64 {
        // qhat = floor(a * ratio / 2^128): the high 128 bits of a 256-bit product.
        let qhat = mulhi_u128(a, self.ratio);
        let mut r = a.wrapping_sub(qhat.wrapping_mul(self.value as u128)) as u64;
        // The Barrett estimate is off by at most 2.
        if r >= self.value {
            r -= self.value;
        }
        if r >= self.value {
            r -= self.value;
        }
        r
    }

    /// Modular addition of canonical operands.
    ///
    /// `a + b` is computed in plain `u64`: the [`MAX_MODULUS_BITS`] bound
    /// enforced by [`Modulus::new`] keeps the sum of two canonical operands
    /// below `2^62`, so the addition can never wrap. Non-canonical operands
    /// (which *could* overflow for wide moduli) violate the contract below.
    ///
    /// # Panics
    ///
    /// With the default `strict-checks` feature, panics if either operand
    /// is `≥ q` (debug builds only otherwise).
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        crate::strict_assert!(
            a < self.value && b < self.value,
            "non-canonical operands to Modulus::add: a={a} b={b} q={}",
            self.value
        );
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction of canonical operands.
    ///
    /// # Panics
    ///
    /// With the default `strict-checks` feature, panics if either operand
    /// is `≥ q` (debug builds only otherwise).
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        crate::strict_assert!(
            a < self.value && b < self.value,
            "non-canonical operands to Modulus::sub: a={a} b={b} q={}",
            self.value
        );
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular negation of a canonical operand.
    ///
    /// # Panics
    ///
    /// With the default `strict-checks` feature, panics if `a ≥ q` (debug
    /// builds only otherwise).
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        crate::strict_assert!(a < self.value, "non-canonical operand to Modulus::neg: a={a}");
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Modular multiplication via Barrett reduction.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Fused multiply-add `a*b + c mod q`.
    #[inline]
    pub fn mul_add(&self, a: u64, b: u64, c: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128 + c as u128)
    }

    /// Modular exponentiation by squaring.
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        base = self.reduce(base);
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse via Fermat's little theorem (valid for prime `q`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotInvertible`] if `a ≡ 0 (mod q)` or the
    /// computed inverse fails verification (non-prime modulus).
    pub fn inv(&self, a: u64) -> Result<u64, MathError> {
        let a = self.reduce(a);
        if a == 0 {
            return Err(MathError::NotInvertible { value: a, modulus: self.value });
        }
        let inv = self.pow(a, self.value - 2);
        if self.mul(a, inv) != 1 {
            return Err(MathError::NotInvertible { value: a, modulus: self.value });
        }
        Ok(inv)
    }

    /// Precomputes a Shoup representation of `w` for repeated products
    /// `a * w mod q` — the fast path NTT butterflies use for twiddles.
    ///
    /// # Panics
    ///
    /// With the default `strict-checks` feature, panics if `w ≥ q` (debug
    /// builds only otherwise): the quotient of a non-canonical `w` would
    /// make every subsequent [`Modulus::mul_shoup`] silently wrong.
    #[inline]
    pub fn shoup(&self, w: u64) -> ShoupScalar {
        crate::strict_assert!(
            w < self.value,
            "non-canonical operand to Modulus::shoup: w={w} q={}",
            self.value
        );
        ShoupScalar { value: w, quotient: (((w as u128) << 64) / self.value as u128) as u64 }
    }

    /// Shoup modular multiplication `a * w mod q` with `w` precomputed.
    ///
    /// The canonical-form bound on `a` stays a `debug_assert!`: this is the
    /// butterfly inner loop, called `n log n` times per NTT, and the Shoup
    /// quotient precomputed by [`Modulus::shoup`] is only valid for
    /// canonical `a` anyway — the strict check lives at that boundary.
    #[inline]
    pub fn mul_shoup(&self, a: u64, w: ShoupScalar) -> u64 {
        debug_assert!(a < self.value);
        let qhat = ((a as u128 * w.quotient as u128) >> 64) as u64;
        let r = (a.wrapping_mul(w.value)).wrapping_sub(qhat.wrapping_mul(self.value));
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Lazy Shoup multiplication: returns a value in `[0, 2q)` congruent to
    /// `a * w mod q`, for *any* `u64` operand `a` (Harvey's bound — the
    /// quotient estimate errs by at most one multiple of `q`).
    ///
    /// This is the butterfly primitive of the lazy NTT (DESIGN.md §14):
    /// skipping the final conditional subtraction keeps the dependency chain
    /// one step shorter, and because it tolerates non-canonical inputs the
    /// NTT can carry `[0, 2q)`/`[0, 4q)` values across layers with a single
    /// normalization at the end.
    #[inline]
    pub fn mul_shoup_lazy(&self, a: u64, w: ShoupScalar) -> u64 {
        crate::simd::mul_shoup_lazy_scalar(a, w, self.value)
    }

    /// Canonicalizes a lazy `[0, 2q)` value with one conditional
    /// subtraction.
    ///
    /// # Panics
    ///
    /// With the default `strict-checks` feature, panics if `a ≥ 2q` (debug
    /// builds only otherwise).
    #[inline]
    pub fn reduce_2q(&self, a: u64) -> u64 {
        crate::strict_assert!(
            a < self.value << 1,
            "operand to Modulus::reduce_2q outside [0, 2q): a={a} q={}",
            self.value
        );
        if a >= self.value {
            a - self.value
        } else {
            a
        }
    }

    /// Converts a signed value in `(-q, q)` represented as `i64` to canonical form.
    #[inline]
    pub fn from_i64(&self, a: i64) -> u64 {
        let q = self.value as i128;
        let mut v = a as i128 % q;
        if v < 0 {
            v += q;
        }
        v as u64
    }

    /// Maps a canonical residue to its centered representative in
    /// `[-⌊q/2⌋, ⌊q/2⌋]` (symmetric for odd `q`: residues up to `⌊q/2⌋`
    /// map to themselves, `⌊q/2⌋ + 1` maps to `-⌊q/2⌋`).
    ///
    /// # Panics
    ///
    /// With the default `strict-checks` feature, panics if `a ≥ q` (debug
    /// builds only otherwise).
    #[inline]
    pub fn to_centered(&self, a: u64) -> i64 {
        crate::strict_assert!(
            a < self.value,
            "non-canonical operand to Modulus::to_centered: a={a} q={}",
            self.value
        );
        if a > self.value / 2 {
            a as i64 - self.value as i64
        } else {
            a as i64
        }
    }
}

/// A value together with its Shoup quotient, enabling one-multiplication
/// modular products against a fixed operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ShoupScalar {
    /// The canonical value `w < q`.
    pub value: u64,
    /// `floor(w * 2^64 / q)`.
    pub quotient: u64,
}

/// High 128 bits of the 256-bit product `a * b`.
#[inline]
fn mulhi_u128(a: u128, b: u128) -> u128 {
    let a_lo = a as u64 as u128;
    let a_hi = a >> 64;
    let b_lo = b as u64 as u128;
    let b_hi = b >> 64;

    let lo_lo = a_lo * b_lo;
    let lo_hi = a_lo * b_hi;
    let hi_lo = a_hi * b_lo;
    let hi_hi = a_hi * b_hi;

    let mid = (lo_lo >> 64) + (lo_hi & ((1u128 << 64) - 1)) + (hi_lo & ((1u128 << 64) - 1));
    hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q36: u64 = 68_719_403_009; // 36-bit NTT prime (q ≡ 1 mod 2^17)
    const Q60: u64 = 1_152_921_504_606_830_593; // 60-bit NTT prime

    #[test]
    fn rejects_bad_moduli() {
        assert!(Modulus::new(0).is_err());
        assert!(Modulus::new(1).is_err());
        assert!(Modulus::new(4).is_err());
        assert!(Modulus::new(1 << 62).is_err());
        assert!(Modulus::new((1 << 62) + 1).is_err());
    }

    #[test]
    fn barrett_matches_u128_remainder() {
        for &q in &[3u64, 17, 65537, Q36, Q60, (1u64 << 61) - 1] {
            let m = Modulus::new(q).unwrap();
            let samples = [
                0u128,
                1,
                q as u128 - 1,
                q as u128,
                q as u128 + 1,
                (q as u128) * (q as u128) - 1,
                u128::from(u64::MAX),
                0x1234_5678_9abc_def0_1122_3344_5566_7788,
            ];
            for &x in &samples {
                assert_eq!(m.reduce_u128(x), (x % q as u128) as u64, "q={q} x={x}");
            }
        }
    }

    #[test]
    fn mul_add_sub_neg_consistency() {
        let m = Modulus::new(Q36).unwrap();
        let a = 0x123456789u64 % Q36;
        let b = 0xabcdef123u64 % Q36;
        assert_eq!(m.add(a, m.neg(a)), 0);
        assert_eq!(m.sub(m.add(a, b), b), a);
        assert_eq!(m.mul(a, b), (a as u128 * b as u128 % Q36 as u128) as u64);
        assert_eq!(m.mul_add(a, b, 7), ((a as u128 * b as u128 + 7) % Q36 as u128) as u64);
    }

    #[test]
    fn pow_and_inv() {
        let m = Modulus::new(Q36).unwrap();
        assert_eq!(m.pow(3, 0), 1);
        assert_eq!(m.pow(3, 1), 3);
        assert_eq!(m.pow(2, 36), (1u128 << 36) as u64 % Q36);
        let inv3 = m.inv(3).unwrap();
        assert_eq!(m.mul(3, inv3), 1);
        assert!(m.inv(0).is_err());
    }

    #[test]
    fn shoup_matches_barrett() {
        let m = Modulus::new(Q60).unwrap();
        let w = Q60 - 12345;
        let ws = m.shoup(w);
        for a in [0u64, 1, 2, Q60 / 2, Q60 - 1] {
            assert_eq!(m.mul_shoup(a, ws), m.mul(a, w));
        }
    }

    #[test]
    fn centered_round_trip() {
        let m = Modulus::new(65537).unwrap();
        for v in [-32768i64, -1, 0, 1, 32768] {
            assert_eq!(m.to_centered(m.from_i64(v)), v);
        }
    }

    #[test]
    fn centered_boundary_is_symmetric() {
        // Odd q: the centered range is [-⌊q/2⌋, ⌊q/2⌋]. ⌊q/2⌋ keeps its
        // sign, ⌊q/2⌋ + 1 flips to the most-negative representative.
        for &q in &[3u64, 65537, Q36, (1u64 << 61) - 1] {
            let m = Modulus::new(q).unwrap();
            let half = q / 2;
            assert_eq!(m.to_centered(half), half as i64, "q={q}");
            assert_eq!(m.to_centered(half + 1), -(half as i64), "q={q}");
            assert_eq!(m.to_centered(0), 0, "q={q}");
            assert_eq!(m.to_centered(q - 1), -1, "q={q}");
        }
    }

    #[test]
    fn add_at_max_modulus_never_wraps() {
        // Satellite: a + b could wrap u64 for moduli ≥ 2^63; the 61-bit
        // bound in Modulus::new keeps canonical sums below 2^62. Exercise
        // the largest representable modulus with the largest operands.
        let q = (1u64 << 61) - 1; // Mersenne prime 2^61 - 1
        let m = Modulus::new(q).unwrap();
        assert_eq!(m.add(q - 1, q - 1), q - 2);
        assert_eq!(m.add(q - 1, 1), 0);
        assert_eq!(m.sub(0, q - 1), 1);
        assert_eq!(m.neg(q - 1), 1);
    }

    #[test]
    #[cfg(feature = "strict-checks")]
    #[should_panic(expected = "non-canonical operands to Modulus::add")]
    fn add_rejects_non_canonical_operands_in_release() {
        let m = Modulus::new(Q36).unwrap();
        // Without strict-checks this would silently compute a wrong (or for
        // huge operands, wrapped) sum in release builds.
        let _ = m.add(Q36, 0);
    }

    #[test]
    fn mulhi_u128_known_values() {
        assert_eq!(mulhi_u128(u128::MAX, u128::MAX), u128::MAX - 1);
        assert_eq!(mulhi_u128(1 << 127, 2), 1);
        assert_eq!(mulhi_u128(0, u128::MAX), 0);
    }
}
