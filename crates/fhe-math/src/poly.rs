//! Single-modulus polynomials over `Z_q[X]/(X^N + 1)`.
//!
//! [`Poly`] tracks which *domain* (coefficient or NTT) its data lives in, so
//! mixing representations is a programming error caught at the call site
//! rather than silent corruption. The RNS layer ([`crate::RnsPoly`]) stacks
//! one `Poly` per channel.

use crate::{simd, AVec, MathError, Modulus, NttTable};

/// The representation domain of a polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Coefficient (power-basis) representation.
    Coefficient,
    /// Evaluation (NTT) representation in the table's matched order.
    Ntt,
}

/// A dense polynomial modulo a single word-sized prime.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_math::MathError> {
/// use fhe_math::{generate_ntt_primes, Modulus, NttTable, Poly};
/// let q = Modulus::new(generate_ntt_primes(36, 32, 1)?[0])?;
/// let table = NttTable::new(q, 32)?;
/// let x = Poly::from_coeffs(vec![0, 1].into_iter().chain(std::iter::repeat(0)).take(32).collect(), q)?;
/// let mut x2 = x.mul(&x, &table)?; // result is in NTT domain
/// x2.to_coeff(&table);
/// assert_eq!(x2.coeffs()[2], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    /// 64-byte-aligned storage so the SIMD kernels see cache-line-aligned
    /// rows (alignment is a throughput hint; correctness never depends on
    /// it — the vector paths use unaligned loads).
    coeffs: AVec,
    modulus: Modulus,
    domain: Domain,
    /// When `true` the NTT-domain values are *lazy* residues in `[0, 2q)`
    /// (Harvey range) instead of canonical `[0, q)`. Lazy polynomials are
    /// transient pipeline intermediates: element-wise `add`/`sub` reject
    /// them, `mul` tolerates them, and [`Poly::normalize`] canonicalizes.
    lazy: bool,
}

impl Poly {
    /// Creates the zero polynomial of degree `n` in coefficient domain.
    pub fn zero(n: usize, modulus: Modulus) -> Self {
        Poly { coeffs: AVec::zeroed(n), modulus, domain: Domain::Coefficient, lazy: false }
    }

    /// Wraps raw coefficients (must already be canonical, `< q`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if any coefficient is `≥ q`.
    pub fn from_coeffs(coeffs: Vec<u64>, modulus: Modulus) -> Result<Self, MathError> {
        if let Some(&bad) = coeffs.iter().find(|&&c| c >= modulus.value()) {
            return Err(MathError::InvalidParameter {
                detail: format!("coefficient {bad} not reduced modulo {}", modulus.value()),
            });
        }
        Ok(Poly { coeffs: AVec::from(coeffs), modulus, domain: Domain::Coefficient, lazy: false })
    }

    /// Wraps raw NTT-domain values (must already be canonical).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if any value is `≥ q`.
    pub fn from_ntt(values: Vec<u64>, modulus: Modulus) -> Result<Self, MathError> {
        let mut p = Poly::from_coeffs(values, modulus)?;
        p.domain = Domain::Ntt;
        Ok(p)
    }

    /// The polynomial degree (vector length).
    #[inline]
    pub fn n(&self) -> usize {
        self.coeffs.len()
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// Which domain the data currently lives in.
    #[inline]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Raw data access (interpretation depends on [`Poly::domain`]).
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable raw data access.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Whether the values are lazy Harvey residues in `[0, 2q)` rather
    /// than canonical `[0, q)` (see [`Poly::to_ntt_lazy`]).
    #[inline]
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Canonicalizes lazy residues in place (one conditional subtraction
    /// per element; no-op when already canonical).
    pub fn normalize(&mut self) {
        if self.lazy {
            simd::reduce_2q_slice(&mut self.coeffs, self.modulus.value());
            self.lazy = false;
        }
    }

    /// Converts to NTT domain in place (no-op if already there). Output is
    /// canonical; the final butterfly stage fuses the reduction, so this
    /// costs no extra pass over [`Poly::to_ntt_lazy`].
    pub fn to_ntt(&mut self, table: &NttTable) {
        if self.domain == Domain::Coefficient {
            table.forward(&mut self.coeffs);
            self.domain = Domain::Ntt;
        }
    }

    /// Converts to NTT domain leaving values in the lazy `[0, 2q)` range —
    /// the fast path for pipelines that immediately feed the result into a
    /// lazy-tolerant consumer ([`Poly::mul`], `inverse`, Barrett dot
    /// products). No-op if already in NTT domain.
    pub fn to_ntt_lazy(&mut self, table: &NttTable) {
        if self.domain == Domain::Coefficient {
            table.forward_lazy(&mut self.coeffs);
            self.domain = Domain::Ntt;
            self.lazy = true;
        }
    }

    /// Converts to coefficient domain in place (no-op if already there).
    /// Accepts lazy input; output is always canonical.
    pub fn to_coeff(&mut self, table: &NttTable) {
        if self.domain == Domain::Ntt {
            table.inverse(&mut self.coeffs);
            self.domain = Domain::Coefficient;
            self.lazy = false;
        }
    }

    /// Element-wise sum; both operands must share modulus and domain.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] on modulus/domain/length
    /// disagreement.
    pub fn add(&self, other: &Poly) -> Result<Poly, MathError> {
        self.check_compatible(other)?;
        let mut out = self.clone();
        simd::add_mod_slice(&mut out.coeffs, &other.coeffs, self.modulus.value());
        Ok(out)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] on modulus/domain/length
    /// disagreement.
    pub fn sub(&self, other: &Poly) -> Result<Poly, MathError> {
        self.check_compatible(other)?;
        let mut out = self.clone();
        simd::sub_mod_slice(&mut out.coeffs, &other.coeffs, self.modulus.value());
        Ok(out)
    }

    /// Negacyclic product. Operands may be in either domain (and may be
    /// lazy — the Barrett point-wise product tolerates `[0, 2q)` inputs);
    /// they are transformed as needed and the canonical result is returned
    /// in NTT domain.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] if moduli or lengths differ, or
    /// the table size does not match.
    pub fn mul(&self, other: &Poly, table: &NttTable) -> Result<Poly, MathError> {
        if self.modulus != other.modulus || self.n() != other.n() || table.n() != self.n() {
            return Err(MathError::BasisMismatch { detail: "mul operands/table disagree" });
        }
        // The internal forwards stay in the lazy range: the Barrett
        // reduction of the point-wise product maps every representative to
        // the same canonical residue, so the result is bit-identical to the
        // eager path with one fewer reduction pass per operand.
        let mut a = self.clone();
        let mut b = other.clone();
        a.to_ntt_lazy(table);
        b.to_ntt_lazy(table);
        let mut out = a;
        simd::mul_mod_slice(&mut out.coeffs, &b.coeffs, &self.modulus);
        out.lazy = false;
        Ok(out)
    }

    /// Multiplies every entry by a scalar (domain-agnostic, accepts lazy
    /// input; the result is canonical).
    pub fn scalar_mul(&self, scalar: u64) -> Poly {
        let m = &self.modulus;
        let s = m.reduce(scalar);
        let sh = m.shoup(s);
        let mut out = self.clone();
        out.normalize();
        simd::mul_shoup_slice(&mut out.coeffs, sh, m.value());
        out
    }

    /// Negates every entry (domain-agnostic, accepts lazy input; the
    /// result is canonical).
    pub fn neg(&self) -> Poly {
        let mut out = self.clone();
        out.normalize();
        simd::neg_mod_slice(&mut out.coeffs, self.modulus.value());
        out
    }

    /// Applies the Galois automorphism `X ↦ X^g` (coefficient domain only;
    /// `g` must be odd so the map is a ring automorphism of
    /// `Z_q[X]/(X^N+1)`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if `g` is even, or
    /// [`MathError::BasisMismatch`] if called in NTT domain.
    pub fn automorphism(&self, g: usize) -> Result<Poly, MathError> {
        if self.domain != Domain::Coefficient {
            return Err(MathError::BasisMismatch {
                detail: "automorphism requires coefficient domain",
            });
        }
        if g.is_multiple_of(2) {
            return Err(MathError::InvalidParameter {
                detail: format!("automorphism exponent {g} must be odd"),
            });
        }
        let n = self.n();
        let m = &self.modulus;
        let mut out = AVec::zeroed(n);
        for (i, &c) in self.coeffs.iter().enumerate() {
            let e = (i * g) % (2 * n);
            if e < n {
                out[e] = m.add(out[e], c);
            } else {
                out[e - n] = m.sub(out[e - n], c);
            }
        }
        Ok(Poly { coeffs: out, modulus: self.modulus, domain: Domain::Coefficient, lazy: false })
    }

    fn check_compatible(&self, other: &Poly) -> Result<(), MathError> {
        if self.modulus != other.modulus {
            return Err(MathError::BasisMismatch { detail: "moduli differ" });
        }
        if self.n() != other.n() {
            return Err(MathError::BasisMismatch { detail: "lengths differ" });
        }
        if self.domain != other.domain {
            return Err(MathError::BasisMismatch { detail: "domains differ" });
        }
        if self.lazy || other.lazy {
            return Err(MathError::BasisMismatch {
                detail: "element-wise op on lazy operand; normalize first",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ntt_primes;

    fn ctx(n: usize) -> (Modulus, NttTable) {
        let q = Modulus::new(generate_ntt_primes(36, n, 1).unwrap()[0]).unwrap();
        (q, NttTable::new(q, n).unwrap())
    }

    #[test]
    fn add_sub_scalar_neg() {
        let (q, _) = ctx(16);
        let a = Poly::from_coeffs((0..16).collect(), q).unwrap();
        let b = Poly::from_coeffs((16..32).collect(), q).unwrap();
        let s = a.add(&b).unwrap();
        assert_eq!(s.sub(&b).unwrap(), a);
        assert_eq!(a.add(&a.neg()).unwrap(), Poly::zero(16, q));
        assert_eq!(a.scalar_mul(3).coeffs()[5], 15);
    }

    #[test]
    fn mul_is_negacyclic() {
        let (q, t) = ctx(16);
        let mut xn1 = Poly::zero(16, q);
        xn1.coeffs_mut()[15] = 1;
        let mut x = Poly::zero(16, q);
        x.coeffs_mut()[1] = 1;
        let mut prod = xn1.mul(&x, &t).unwrap();
        prod.to_coeff(&t);
        assert_eq!(prod.coeffs()[0], q.value() - 1);
    }

    #[test]
    fn automorphism_composition() {
        let (q, _) = ctx(16);
        let a = Poly::from_coeffs((1..=16).collect(), q).unwrap();
        // g = 5 applied then its inverse exponent must round trip.
        let g = 5usize;
        // find inverse of 5 mod 32
        let mut ginv = 0;
        for cand in (1..32).step_by(2) {
            if (cand * g) % 32 == 1 {
                ginv = cand;
            }
        }
        let b = a.automorphism(g).unwrap().automorphism(ginv).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn automorphism_multiplicative() {
        // aut_g(a * b) == aut_g(a) * aut_g(b)
        let (q, t) = ctx(32);
        let a = Poly::from_coeffs((0..32).map(|i| i * 7 % q.value()).collect(), q).unwrap();
        let b = Poly::from_coeffs((0..32).map(|i| i * i % q.value()).collect(), q).unwrap();
        let mut ab = a.mul(&b, &t).unwrap();
        ab.to_coeff(&t);
        let lhs = ab.automorphism(5).unwrap();
        let mut rhs = a.automorphism(5).unwrap().mul(&b.automorphism(5).unwrap(), &t).unwrap();
        rhs.to_coeff(&t);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn domain_mixing_rejected() {
        let (q, t) = ctx(16);
        let a = Poly::from_coeffs((0..16).collect(), q).unwrap();
        let mut b = a.clone();
        b.to_ntt(&t);
        assert!(a.add(&b).is_err());
        assert!(b.automorphism(5).is_err());
        assert!(a.automorphism(4).is_err());
    }

    #[test]
    fn validates_coefficients() {
        let (q, _) = ctx(16);
        assert!(Poly::from_coeffs(vec![q.value(); 16], q).is_err());
    }

    #[test]
    fn lazy_roundtrip_and_guards() {
        let (q, t) = ctx(32);
        let a = Poly::from_coeffs((0..32).map(|i| i * 3 % q.value()).collect(), q).unwrap();
        let mut lazy = a.clone();
        lazy.to_ntt_lazy(&t);
        assert!(lazy.is_lazy());
        assert!(lazy.coeffs().iter().all(|&x| x < 2 * q.value()));
        // Normalizing the lazy transform matches the eager transform
        // bit-for-bit.
        let mut eager = a.clone();
        eager.to_ntt(&t);
        let mut norm = lazy.clone();
        norm.normalize();
        assert!(!norm.is_lazy());
        assert_eq!(norm, eager);
        // Element-wise ops refuse lazy operands...
        assert!(lazy.add(&eager).is_err());
        assert!(eager.sub(&lazy).is_err());
        // ...but the inverse transform and scalar ops accept them.
        let mut back = lazy.clone();
        back.to_coeff(&t);
        assert_eq!(back, a);
        assert_eq!(lazy.neg(), eager.neg());
        assert_eq!(lazy.scalar_mul(7), eager.scalar_mul(7));
    }

    #[test]
    fn mul_tolerates_lazy_operands() {
        let (q, t) = ctx(32);
        let a = Poly::from_coeffs((0..32).map(|i| (i * 11 + 3) % q.value()).collect(), q).unwrap();
        let b = Poly::from_coeffs((0..32).map(|i| (i * i) % q.value()).collect(), q).unwrap();
        // Reference: eager NTT operands.
        let (mut ea, mut eb) = (a.clone(), b.clone());
        ea.to_ntt(&t);
        eb.to_ntt(&t);
        let reference = ea.mul(&eb, &t).unwrap();
        // Lazy NTT operands must give the bit-identical canonical product.
        let (mut la, mut lb) = (a.clone(), b.clone());
        la.to_ntt_lazy(&t);
        lb.to_ntt_lazy(&t);
        let lazy_prod = la.mul(&lb, &t).unwrap();
        assert!(!lazy_prod.is_lazy());
        assert_eq!(lazy_prod, reference);
        // And the coefficient-domain entry point agrees too.
        assert_eq!(a.mul(&b, &t).unwrap(), reference);
    }
}
