//! Single-modulus polynomials over `Z_q[X]/(X^N + 1)`.
//!
//! [`Poly`] tracks which *domain* (coefficient or NTT) its data lives in, so
//! mixing representations is a programming error caught at the call site
//! rather than silent corruption. The RNS layer ([`crate::RnsPoly`]) stacks
//! one `Poly` per channel.

use crate::{MathError, Modulus, NttTable};

/// The representation domain of a polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Coefficient (power-basis) representation.
    Coefficient,
    /// Evaluation (NTT) representation in the table's matched order.
    Ntt,
}

/// A dense polynomial modulo a single word-sized prime.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_math::MathError> {
/// use fhe_math::{generate_ntt_primes, Modulus, NttTable, Poly};
/// let q = Modulus::new(generate_ntt_primes(36, 32, 1)?[0])?;
/// let table = NttTable::new(q, 32)?;
/// let x = Poly::from_coeffs(vec![0, 1].into_iter().chain(std::iter::repeat(0)).take(32).collect(), q)?;
/// let mut x2 = x.mul(&x, &table)?; // result is in NTT domain
/// x2.to_coeff(&table);
/// assert_eq!(x2.coeffs()[2], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u64>,
    modulus: Modulus,
    domain: Domain,
}

impl Poly {
    /// Creates the zero polynomial of degree `n` in coefficient domain.
    pub fn zero(n: usize, modulus: Modulus) -> Self {
        Poly { coeffs: vec![0; n], modulus, domain: Domain::Coefficient }
    }

    /// Wraps raw coefficients (must already be canonical, `< q`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if any coefficient is `≥ q`.
    pub fn from_coeffs(coeffs: Vec<u64>, modulus: Modulus) -> Result<Self, MathError> {
        if let Some(&bad) = coeffs.iter().find(|&&c| c >= modulus.value()) {
            return Err(MathError::InvalidParameter {
                detail: format!("coefficient {bad} not reduced modulo {}", modulus.value()),
            });
        }
        Ok(Poly { coeffs, modulus, domain: Domain::Coefficient })
    }

    /// Wraps raw NTT-domain values (must already be canonical).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if any value is `≥ q`.
    pub fn from_ntt(values: Vec<u64>, modulus: Modulus) -> Result<Self, MathError> {
        let mut p = Poly::from_coeffs(values, modulus)?;
        p.domain = Domain::Ntt;
        Ok(p)
    }

    /// The polynomial degree (vector length).
    #[inline]
    pub fn n(&self) -> usize {
        self.coeffs.len()
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// Which domain the data currently lives in.
    #[inline]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Raw data access (interpretation depends on [`Poly::domain`]).
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable raw data access.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Converts to NTT domain in place (no-op if already there).
    pub fn to_ntt(&mut self, table: &NttTable) {
        if self.domain == Domain::Coefficient {
            table.forward(&mut self.coeffs);
            self.domain = Domain::Ntt;
        }
    }

    /// Converts to coefficient domain in place (no-op if already there).
    pub fn to_coeff(&mut self, table: &NttTable) {
        if self.domain == Domain::Ntt {
            table.inverse(&mut self.coeffs);
            self.domain = Domain::Coefficient;
        }
    }

    /// Element-wise sum; both operands must share modulus and domain.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] on modulus/domain/length
    /// disagreement.
    pub fn add(&self, other: &Poly) -> Result<Poly, MathError> {
        self.check_compatible(other)?;
        let m = &self.modulus;
        let coeffs = self.coeffs.iter().zip(&other.coeffs).map(|(&a, &b)| m.add(a, b)).collect();
        Ok(Poly { coeffs, modulus: self.modulus, domain: self.domain })
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] on modulus/domain/length
    /// disagreement.
    pub fn sub(&self, other: &Poly) -> Result<Poly, MathError> {
        self.check_compatible(other)?;
        let m = &self.modulus;
        let coeffs = self.coeffs.iter().zip(&other.coeffs).map(|(&a, &b)| m.sub(a, b)).collect();
        Ok(Poly { coeffs, modulus: self.modulus, domain: self.domain })
    }

    /// Negacyclic product. Operands may be in either domain; they are
    /// transformed as needed and the result is returned in NTT domain.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] if moduli or lengths differ, or
    /// the table size does not match.
    pub fn mul(&self, other: &Poly, table: &NttTable) -> Result<Poly, MathError> {
        if self.modulus != other.modulus || self.n() != other.n() || table.n() != self.n() {
            return Err(MathError::BasisMismatch { detail: "mul operands/table disagree" });
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.to_ntt(table);
        b.to_ntt(table);
        let m = &self.modulus;
        let coeffs = a.coeffs.iter().zip(&b.coeffs).map(|(&x, &y)| m.mul(x, y)).collect();
        Ok(Poly { coeffs, modulus: self.modulus, domain: Domain::Ntt })
    }

    /// Multiplies every entry by a scalar (domain-agnostic).
    pub fn scalar_mul(&self, scalar: u64) -> Poly {
        let m = &self.modulus;
        let s = m.reduce(scalar);
        let sh = m.shoup(s);
        let coeffs = self.coeffs.iter().map(|&a| m.mul_shoup(a, sh)).collect();
        Poly { coeffs, modulus: self.modulus, domain: self.domain }
    }

    /// Negates every entry (domain-agnostic).
    pub fn neg(&self) -> Poly {
        let m = &self.modulus;
        let coeffs = self.coeffs.iter().map(|&a| m.neg(a)).collect();
        Poly { coeffs, modulus: self.modulus, domain: self.domain }
    }

    /// Applies the Galois automorphism `X ↦ X^g` (coefficient domain only;
    /// `g` must be odd so the map is a ring automorphism of
    /// `Z_q[X]/(X^N+1)`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if `g` is even, or
    /// [`MathError::BasisMismatch`] if called in NTT domain.
    pub fn automorphism(&self, g: usize) -> Result<Poly, MathError> {
        if self.domain != Domain::Coefficient {
            return Err(MathError::BasisMismatch {
                detail: "automorphism requires coefficient domain",
            });
        }
        if g.is_multiple_of(2) {
            return Err(MathError::InvalidParameter {
                detail: format!("automorphism exponent {g} must be odd"),
            });
        }
        let n = self.n();
        let m = &self.modulus;
        let mut out = vec![0u64; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            let e = (i * g) % (2 * n);
            if e < n {
                out[e] = m.add(out[e], c);
            } else {
                out[e - n] = m.sub(out[e - n], c);
            }
        }
        Ok(Poly { coeffs: out, modulus: self.modulus, domain: Domain::Coefficient })
    }

    fn check_compatible(&self, other: &Poly) -> Result<(), MathError> {
        if self.modulus != other.modulus {
            return Err(MathError::BasisMismatch { detail: "moduli differ" });
        }
        if self.n() != other.n() {
            return Err(MathError::BasisMismatch { detail: "lengths differ" });
        }
        if self.domain != other.domain {
            return Err(MathError::BasisMismatch { detail: "domains differ" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ntt_primes;

    fn ctx(n: usize) -> (Modulus, NttTable) {
        let q = Modulus::new(generate_ntt_primes(36, n, 1).unwrap()[0]).unwrap();
        (q, NttTable::new(q, n).unwrap())
    }

    #[test]
    fn add_sub_scalar_neg() {
        let (q, _) = ctx(16);
        let a = Poly::from_coeffs((0..16).collect(), q).unwrap();
        let b = Poly::from_coeffs((16..32).collect(), q).unwrap();
        let s = a.add(&b).unwrap();
        assert_eq!(s.sub(&b).unwrap(), a);
        assert_eq!(a.add(&a.neg()).unwrap(), Poly::zero(16, q));
        assert_eq!(a.scalar_mul(3).coeffs()[5], 15);
    }

    #[test]
    fn mul_is_negacyclic() {
        let (q, t) = ctx(16);
        let mut xn1 = Poly::zero(16, q);
        xn1.coeffs_mut()[15] = 1;
        let mut x = Poly::zero(16, q);
        x.coeffs_mut()[1] = 1;
        let mut prod = xn1.mul(&x, &t).unwrap();
        prod.to_coeff(&t);
        assert_eq!(prod.coeffs()[0], q.value() - 1);
    }

    #[test]
    fn automorphism_composition() {
        let (q, _) = ctx(16);
        let a = Poly::from_coeffs((1..=16).collect(), q).unwrap();
        // g = 5 applied then its inverse exponent must round trip.
        let g = 5usize;
        // find inverse of 5 mod 32
        let mut ginv = 0;
        for cand in (1..32).step_by(2) {
            if (cand * g) % 32 == 1 {
                ginv = cand;
            }
        }
        let b = a.automorphism(g).unwrap().automorphism(ginv).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn automorphism_multiplicative() {
        // aut_g(a * b) == aut_g(a) * aut_g(b)
        let (q, t) = ctx(32);
        let a = Poly::from_coeffs((0..32).map(|i| i * 7 % q.value()).collect(), q).unwrap();
        let b = Poly::from_coeffs((0..32).map(|i| i * i % q.value()).collect(), q).unwrap();
        let mut ab = a.mul(&b, &t).unwrap();
        ab.to_coeff(&t);
        let lhs = ab.automorphism(5).unwrap();
        let mut rhs = a.automorphism(5).unwrap().mul(&b.automorphism(5).unwrap(), &t).unwrap();
        rhs.to_coeff(&t);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn domain_mixing_rejected() {
        let (q, t) = ctx(16);
        let a = Poly::from_coeffs((0..16).collect(), q).unwrap();
        let mut b = a.clone();
        b.to_ntt(&t);
        assert!(a.add(&b).is_err());
        assert!(b.automorphism(5).is_err());
        assert!(a.automorphism(4).is_err());
    }

    #[test]
    fn validates_coefficients() {
        let (q, _) = ctx(16);
        assert!(Poly::from_coeffs(vec![q.value(); 16], q).is_err());
    }
}
