//! The 4-step NTT decomposition used by Alchemist's data management.
//!
//! The classical iterative NTT is "fully connected": every butterfly stage
//! mixes coefficients across the whole polynomial, which contradicts a
//! slot-partitioned memory layout. The 4-step algorithm (paper §5.3)
//! decomposes an `N = n1·n2`-point transform into
//!
//! 1. `n2` independent `n1`-point NTTs (columns),
//! 2. an element-wise twiddle multiplication,
//! 3. a matrix transpose (on hardware: the transpose register file),
//! 4. `n1` independent `n2`-point NTTs (rows),
//!
//! so each computing unit only ever runs *local* sub-NTTs over the slots it
//! owns. This module is the functional counterpart the simulator's dataflow
//! is validated against.
//!
//! Negacyclic folding: inputs are first *twisted* by powers of the `2N`-th
//! root ψ, turning the negacyclic convolution into a cyclic one.
//!
//! # Ordering
//!
//! [`FourStepNtt::forward`] writes the evaluation `X[k1 + n1·k2]` at flat
//! index `k1·n2 + k2` ("four-step order"). [`FourStepNtt::inverse`] consumes
//! exactly that order, and point-wise products of two four-step-transformed
//! polynomials invert to the negacyclic product, so the order never leaks —
//! the same contract the bit-reversed [`crate::NttTable`] follows.

use crate::modulus::ShoupScalar;
use crate::ntt::{find_primitive_root, transpose_into, CyclicNtt};
use crate::scratch::Scratch;
use crate::{MathError, Modulus};

/// Precomputed tables for a 4-step negacyclic NTT of size `n = n1 * n2`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_math::MathError> {
/// use fhe_math::{generate_ntt_primes, FourStepNtt, Modulus};
/// let q = Modulus::new(generate_ntt_primes(36, 256, 1)?[0])?;
/// let ntt = FourStepNtt::new(q, 16, 16)?;
/// let mut a: Vec<u64> = (0..256).collect();
/// let original = a.clone();
/// ntt.forward(&mut a);
/// ntt.inverse(&mut a);
/// assert_eq!(a, original);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FourStepNtt {
    modulus: Modulus,
    n: usize,
    n1: usize,
    n2: usize,
    col: CyclicNtt,
    row: CyclicNtt,
    /// ω^{i2·k1} laid out at `k1*n2 + i2`, matching the data layout between
    /// steps 2 and 4.
    twiddle: Vec<ShoupScalar>,
    twiddle_inv: Vec<ShoupScalar>,
    /// ψ^i twist factors (negacyclic folding).
    twist: Vec<ShoupScalar>,
    twist_inv: Vec<ShoupScalar>,
}

impl FourStepNtt {
    /// Builds a 4-step NTT with the given column (`n1`) and row (`n2`)
    /// dimensions.
    ///
    /// # Errors
    ///
    /// * [`MathError::InvalidDegree`] if `n1` or `n2` is not a power of two
    ///   of at least 2, or `n1*n2` is outside `[8, 2^17]`.
    /// * [`MathError::NoNttSupport`] if the modulus lacks a `2n`-th root of
    ///   unity.
    pub fn new(modulus: Modulus, n1: usize, n2: usize) -> Result<Self, MathError> {
        if !n1.is_power_of_two() || !n2.is_power_of_two() || n1 < 2 || n2 < 2 {
            return Err(MathError::InvalidDegree { degree: n1.max(n2) });
        }
        let n = n1 * n2;
        if !(8..=(1 << 17)).contains(&n) {
            return Err(MathError::InvalidDegree { degree: n });
        }
        let psi = find_primitive_root(modulus, 2 * n as u64)
            .ok_or(MathError::NoNttSupport { modulus: modulus.value(), degree: n })?;
        let psi_inv = modulus.inv(psi)?;
        let omega = modulus.mul(psi, psi);
        let omega_inv = modulus.inv(omega)?;

        let col = CyclicNtt::with_root(modulus, n1, modulus.pow(omega, (n / n1) as u64))?;
        let row = CyclicNtt::with_root(modulus, n2, modulus.pow(omega, (n / n2) as u64))?;

        let mut twiddle = Vec::with_capacity(n);
        let mut twiddle_inv = Vec::with_capacity(n);
        for k1 in 0..n1 {
            for i2 in 0..n2 {
                let e = (i2 as u64) * (k1 as u64);
                twiddle.push(modulus.shoup(modulus.pow(omega, e)));
                twiddle_inv.push(modulus.shoup(modulus.pow(omega_inv, e)));
            }
        }
        let mut twist = Vec::with_capacity(n);
        let mut twist_inv = Vec::with_capacity(n);
        let mut p = 1u64;
        let mut pi = 1u64;
        for _ in 0..n {
            twist.push(modulus.shoup(p));
            twist_inv.push(modulus.shoup(pi));
            p = modulus.mul(p, psi);
            pi = modulus.mul(pi, psi_inv);
        }
        Ok(FourStepNtt { modulus, n, n1, n2, col, row, twiddle, twiddle_inv, twist, twist_inv })
    }

    /// Total transform size `n1 * n2`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Column dimension (number of slots per computing unit on hardware).
    #[inline]
    pub fn n1(&self) -> usize {
        self.n1
    }

    /// Row dimension (number of computing units on hardware).
    #[inline]
    pub fn n2(&self) -> usize {
        self.n2
    }

    /// The column (`n1`-point) transform — exposed so a distributed
    /// executor can run it per computing unit.
    #[inline]
    pub fn col_transform(&self) -> &CyclicNtt {
        &self.col
    }

    /// The row (`n2`-point) transform.
    #[inline]
    pub fn row_transform(&self) -> &CyclicNtt {
        &self.row
    }

    /// Negacyclic twist factors `ψ^i`, indexed by flat slot.
    #[inline]
    pub fn twist_factors(&self) -> &[ShoupScalar] {
        &self.twist
    }

    /// Inter-step twiddles `ω^{i2·k1}` at layout `k1·n2 + i2`.
    #[inline]
    pub fn twiddle_factors(&self) -> &[ShoupScalar] {
        &self.twiddle
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// Forward negacyclic NTT in four-step order (see module docs).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = &self.modulus;
        // Twist: negacyclic -> cyclic.
        for (x, t) in a.iter_mut().zip(&self.twist) {
            *x = m.mul_shoup(*x, *t);
        }
        // Step 1: n2 column NTTs of size n1. A blocked transpose makes each
        // column contiguous (the cross-unit movement the hardware realizes
        // through the transpose register file), instead of gathering one
        // cache-missing stride-n2 column at a time.
        Scratch::with_thread_local(|pool| {
            let mut tmp = pool.take(self.n);
            transpose_into(a, &mut tmp, self.n1, self.n2);
            for col in tmp.chunks_exact_mut(self.n1) {
                self.col.forward_natural(col);
            }
            transpose_into(&tmp, a, self.n2, self.n1);
            pool.put(tmp);
        });
        // Step 2: twiddle multiplication.
        for (x, t) in a.iter_mut().zip(&self.twiddle) {
            *x = m.mul_shoup(*x, *t);
        }
        // Steps 3+4: rows are already contiguous in this layout; run the
        // n1 row NTTs of size n2.
        for k1 in 0..self.n1 {
            self.row.forward_natural(&mut a[k1 * self.n2..(k1 + 1) * self.n2]);
        }
    }

    /// Inverse of [`FourStepNtt::forward`], including all scaling.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = &self.modulus;
        for k1 in 0..self.n1 {
            self.row.inverse_natural(&mut a[k1 * self.n2..(k1 + 1) * self.n2]);
        }
        for (x, t) in a.iter_mut().zip(&self.twiddle_inv) {
            *x = m.mul_shoup(*x, *t);
        }
        Scratch::with_thread_local(|pool| {
            let mut tmp = pool.take(self.n);
            transpose_into(a, &mut tmp, self.n1, self.n2);
            for col in tmp.chunks_exact_mut(self.n1) {
                self.col.inverse_natural(col);
            }
            transpose_into(&tmp, a, self.n2, self.n1);
            pool.put(tmp);
        });
        for (x, t) in a.iter_mut().zip(&self.twist_inv) {
            *x = m.mul_shoup(*x, *t);
        }
    }

    /// Permutes a four-step-ordered evaluation vector into natural DFT order
    /// (`out[k1 + n1*k2] = a[k1*n2 + k2]`). Only needed when comparing
    /// against a reference transform; round trips and point-wise products
    /// never require it.
    pub fn to_natural_order(&self, a: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), self.n);
        let mut out = vec![0u64; self.n];
        for k1 in 0..self.n1 {
            for k2 in 0..self.n2 {
                out[k1 + self.n1 * k2] = a[k1 * self.n2 + k2];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ntt_primes;

    fn setup(n1: usize, n2: usize) -> (Modulus, FourStepNtt) {
        let q = Modulus::new(generate_ntt_primes(36, n1 * n2, 1).unwrap()[0]).unwrap();
        (q, FourStepNtt::new(q, n1, n2).unwrap())
    }

    #[test]
    fn round_trip_various_shapes() {
        for (n1, n2) in [(2usize, 4usize), (4, 4), (8, 16), (16, 8), (32, 32)] {
            let (q, ntt) = setup(n1, n2);
            let n = n1 * n2;
            let mut a: Vec<u64> = (0..n as u64).map(|i| (i * 97 + 5) % q.value()).collect();
            let original = a.clone();
            ntt.forward(&mut a);
            ntt.inverse(&mut a);
            assert_eq!(a, original, "shape {n1}x{n2}");
        }
    }

    #[test]
    fn pointwise_product_is_negacyclic_convolution() {
        let (q, ntt) = setup(4, 8);
        let n = 32;
        let a: Vec<u64> = (0..n as u64).map(|i| (i + 1) % q.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (3 * i + 2) % q.value()).collect();
        // Reference via schoolbook negacyclic convolution.
        let mut expected = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                let p = q.mul(a[i], b[j]);
                if i + j < n {
                    expected[i + j] = q.add(expected[i + j], p);
                } else {
                    expected[i + j - n] = q.sub(expected[i + j - n], p);
                }
            }
        }
        let mut fa = a.clone();
        let mut fb = b.clone();
        ntt.forward(&mut fa);
        ntt.forward(&mut fb);
        let mut prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul(x, y)).collect();
        ntt.inverse(&mut prod);
        assert_eq!(prod, expected);
    }

    #[test]
    fn natural_order_matches_naive_negacyclic_dft() {
        let (q, ntt) = setup(4, 4);
        let n = 16;
        let a: Vec<u64> = (1..=n as u64).collect();
        let mut f = a.clone();
        ntt.forward(&mut f);
        let natural = ntt.to_natural_order(&f);
        // Naive: X[k] = sum_i a[i] * psi^i * omega^{ik}; recover psi/omega
        // from the tables by probing the impulse response of X^1.
        // Simpler: evaluate directly with an independently-found root.
        let psi = crate::ntt::find_primitive_root(q, 2 * n as u64).unwrap();
        let omega = q.mul(psi, psi);
        #[allow(clippy::needless_range_loop)] // index math mirrors the DFT sum
        for k in 0..n {
            let mut acc = 0u64;
            for i in 0..n {
                let tw = q.mul(q.pow(psi, i as u64), q.pow(omega, (i * k) as u64));
                acc = q.add(acc, q.mul(a[i], tw));
            }
            assert_eq!(natural[k], acc, "k={k}");
        }
    }

    #[test]
    fn agrees_with_bit_reversed_ntt_under_multiplication() {
        // The two transforms use different orders but must produce identical
        // negacyclic products.
        use crate::NttTable;
        let (q, four) = setup(8, 8);
        let n = 64;
        let flat = NttTable::new(q, n).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 1) % q.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 13 + 7) % q.value()).collect();

        let mut fa4 = a.clone();
        let mut fb4 = b.clone();
        four.forward(&mut fa4);
        four.forward(&mut fb4);
        let mut p4: Vec<u64> = fa4.iter().zip(&fb4).map(|(&x, &y)| q.mul(x, y)).collect();
        four.inverse(&mut p4);

        let mut fa = a.clone();
        let mut fb = b.clone();
        flat.forward(&mut fa);
        flat.forward(&mut fb);
        let mut p: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul(x, y)).collect();
        flat.inverse(&mut p);

        assert_eq!(p4, p);
    }

    #[test]
    fn rejects_bad_shapes() {
        let q = Modulus::new(generate_ntt_primes(36, 64, 1).unwrap()[0]).unwrap();
        assert!(FourStepNtt::new(q, 1, 64).is_err());
        assert!(FourStepNtt::new(q, 3, 8).is_err());
        assert!(FourStepNtt::new(q, 2, 2).is_err()); // n = 4 < 8
    }
}
