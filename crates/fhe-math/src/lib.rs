//! Number-theoretic substrate for cross-scheme fully homomorphic encryption.
//!
//! This crate provides every low-level building block the Alchemist
//! reproduction needs, implemented from scratch:
//!
//! * [`Modulus`] — word-sized prime moduli with Barrett and Shoup
//!   multiplication and lazy 128-bit accumulation (the arithmetic the
//!   paper's Meta-OP `(M_j A_j)_n R_j` performs in hardware),
//! * [`NttTable`] — negacyclic number-theoretic transforms, including the
//!   4-step formulation used by Alchemist's slot-based data management and
//!   a radix-8/4 *blocked* formulation that the Meta-OP layer lowers,
//! * [`RnsBasis`] / [`RnsPoly`] — residue-number-system polynomials with the
//!   fast base conversion `Bconv` (paper Eq. 1), `Modup` (Eq. 2) and
//!   `Moddown` (Eq. 3),
//! * gadget decomposition for both CKKS (`dnum` hybrid key-switching digits)
//!   and TFHE (signed base-2^w digits),
//! * secure-ish sampling helpers (discrete Gaussian, ternary, uniform) —
//!   statistical quality suitable for a research reproduction,
//! * a tiny arbitrary-precision unsigned integer [`UBig`] used to *verify*
//!   RNS algebra against exact integer arithmetic in tests.
//!
//! # Example
//!
//! ```
//! use fhe_math::{Modulus, NttTable};
//!
//! # fn main() -> Result<(), fhe_math::MathError> {
//! let q = fhe_math::generate_ntt_primes(36, 1 << 10, 1)?[0];
//! let modulus = Modulus::new(q)?;
//! let table = NttTable::new(modulus, 1 << 10)?;
//! let mut poly = vec![1u64; 1 << 10];
//! table.forward(&mut poly);
//! table.inverse(&mut poly);
//! assert!(poly.iter().all(|&c| c == 1));
//! # Ok(())
//! # }
//! ```

// Unsafe is denied crate-wide and only re-allowed in the two modules that
// need it: `simd` (std::arch intrinsics) and `aligned` (the 64-byte-aligned
// arena's slice views). Everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
mod aligned;
mod bigint;
mod decomp;
mod error;
mod four_step;
pub mod integrity;
mod modulus;
mod montgomery;
mod ntt;
pub mod par;
mod poly;
mod prime;
mod rns;
mod sampling;
mod scratch;
#[allow(unsafe_code)]
pub mod simd;
mod strict;

pub use aligned::AVec;
pub use bigint::UBig;
pub use decomp::{Gadget, SignedDigitDecomposer};
pub use error::MathError;
pub use four_step::FourStepNtt;
pub use integrity::{checksum_enabled, set_checksum_enabled};
pub use modulus::{Modulus, ShoupScalar};
pub use montgomery::MontgomeryContext;
pub use ntt::{CyclicNtt, NttTable};
pub use par::ParError;
pub use poly::{Domain, Poly};
pub use prime::{generate_ntt_primes, generate_primes_with_step, is_prime};
pub use rns::{BconvPlan, RnsBasis, RnsContext, RnsPoly};
pub use sampling::{sample_gaussian, sample_ternary, sample_uniform, GaussianSampler};
pub use scratch::{scratch_stats, Scratch, ScratchStats};
pub use strict::strict_checks_enabled;
