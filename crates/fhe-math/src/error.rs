//! Error type shared by all fallible constructors and operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the number-theoretic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MathError {
    /// A modulus was zero, one, even where a prime was required, or too wide
    /// for the lazy-accumulation invariants (bit width must be ≤ 61).
    InvalidModulus {
        /// The offending modulus value.
        value: u64,
        /// Human-readable reason the modulus was rejected.
        reason: &'static str,
    },
    /// A polynomial degree was not a power of two or was outside the
    /// supported range `[8, 2^17]`.
    InvalidDegree {
        /// The offending degree.
        degree: usize,
    },
    /// The modulus does not support an NTT of the requested size
    /// (`q ≢ 1 mod 2N`).
    NoNttSupport {
        /// The modulus.
        modulus: u64,
        /// The requested transform size.
        degree: usize,
    },
    /// Prime generation exhausted its search space.
    PrimeSearchExhausted {
        /// Bit width of the requested primes.
        bits: u32,
        /// How many primes were requested.
        requested: usize,
        /// How many were found before the search space ran out.
        found: usize,
    },
    /// Two operands live on different moduli or bases.
    BasisMismatch {
        /// Description of the mismatch.
        detail: &'static str,
    },
    /// An element was not invertible modulo the basis.
    NotInvertible {
        /// The non-invertible element.
        value: u64,
        /// The modulus.
        modulus: u64,
    },
    /// A parameter combination is structurally invalid (empty basis,
    /// zero digits, mismatched lengths, ...).
    InvalidParameter {
        /// Description of the invalid parameter.
        detail: String,
    },
    /// A worker chunk of a parallel region panicked; the panic was contained
    /// at the chunk boundary (see [`crate::par::ParError`]) and the region's
    /// output is poisoned. The process itself remains healthy — subsequent
    /// kernel calls are unaffected.
    WorkerPanic {
        /// Worker slot that executed the panicked chunk.
        worker: usize,
        /// Index of the panicked contiguous chunk.
        chunk: usize,
        /// Stringified panic payload.
        payload: String,
    },
    /// Data failed an integrity check: a stored checksum no longer matches
    /// the recomputed one, i.e. limbs were corrupted after sealing.
    IntegrityViolation {
        /// Where the mismatch was detected.
        context: &'static str,
    },
}

impl From<crate::par::ParError> for MathError {
    fn from(e: crate::par::ParError) -> Self {
        MathError::WorkerPanic { worker: e.worker, chunk: e.chunk, payload: e.payload }
    }
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::InvalidModulus { value, reason } => {
                write!(f, "invalid modulus {value}: {reason}")
            }
            MathError::InvalidDegree { degree } => {
                write!(f, "invalid polynomial degree {degree}: must be a power of two in [8, 2^17]")
            }
            MathError::NoNttSupport { modulus, degree } => {
                write!(f, "modulus {modulus} does not support a negacyclic NTT of size {degree}")
            }
            MathError::PrimeSearchExhausted { bits, requested, found } => {
                write!(f, "exhausted {bits}-bit prime search: requested {requested}, found {found}")
            }
            MathError::BasisMismatch { detail } => write!(f, "basis mismatch: {detail}"),
            MathError::NotInvertible { value, modulus } => {
                write!(f, "{value} is not invertible modulo {modulus}")
            }
            MathError::InvalidParameter { detail } => write!(f, "invalid parameter: {detail}"),
            MathError::WorkerPanic { worker, chunk, payload } => {
                write!(f, "contained worker panic (worker {worker}, chunk {chunk}): {payload}")
            }
            MathError::IntegrityViolation { context } => {
                write!(f, "integrity violation detected at {context}")
            }
        }
    }
}

impl Error for MathError {}
