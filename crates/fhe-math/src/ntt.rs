//! Negacyclic number-theoretic transforms.
//!
//! [`NttTable`] implements the in-place iterative Cooley–Tukey (forward) /
//! Gentleman–Sande (inverse) negacyclic NTT over `Z_q[X]/(X^N + 1)` with
//! Shoup-precomputed twiddles, following the standard bit-reversed-twiddle
//! formulation (Longa–Naehrig). Both directions run **Harvey lazy
//! butterflies** (values stay in `[0, 4q)` forward / `[0, 2q)` inverse
//! across layers, one fused reduction in the final stage — paper Table 2's
//! deferred-reduction analysis) on the [`crate::simd`] vector kernels, and
//! large transforms switch to a cache-blocked four-step schedule that keeps
//! each working set inside L1/L2 (paper §5.3's slot-local NTT). All of this
//! is bit-identical to the textbook eager transform; see DESIGN.md §14 for
//! the value-range contract.
//!
//! [`CyclicNtt`] is the plain cyclic transform used as a building block of
//! the 4-step NTT ([`crate::FourStepNtt`]) that Alchemist's slot-based data
//! management relies on (paper §5.3).

use crate::modulus::ShoupScalar;
use crate::scratch::Scratch;
use crate::simd;
use crate::{MathError, Modulus};

/// Transforms of `2^BLOCKED_MIN_LOG_N` points or more run the cache-blocked
/// four-step schedule instead of the flat stage loop. At `n = 2^13` the flat
/// transform's working set (64 KiB of coefficients + twiddles) already
/// spills the 48 KiB L1d on the reference host; the blocked schedule turns
/// every pass into `√n`-sized subtransforms that stay resident.
const BLOCKED_MIN_LOG_N: u32 = 13;

/// Finishing reduction fused into the last butterfly stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// Reduce outputs all the way to canonical `[0, q)`.
    Canonical,
    /// Leave outputs lazy in `[0, 2q)` (one conditional subtraction saved
    /// per element; the next pipeline stage must accept lazy values).
    Lazy2q,
}

/// Precomputed tables for the negacyclic NTT of a fixed size and modulus.
///
/// The forward transform maps coefficients (natural order) to evaluations in
/// *bit-reversed* order; the inverse consumes that order. All polynomial
/// arithmetic in this workspace keeps NTT-domain data in this matched order,
/// so the order never leaks.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_math::MathError> {
/// use fhe_math::{generate_ntt_primes, Modulus, NttTable};
/// let q = Modulus::new(generate_ntt_primes(36, 64, 1)?[0])?;
/// let table = NttTable::new(q, 64)?;
/// let mut a = vec![0u64; 64];
/// a[1] = 1; // X
/// let mut b = a.clone();
/// table.forward(&mut a);
/// table.forward(&mut b);
/// let mut prod: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.mul(x, y)).collect();
/// table.inverse(&mut prod);
/// assert_eq!(prod[2], 1); // X * X = X^2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    modulus: Modulus,
    n: usize,
    log_n: u32,
    /// psi^brv(i) for i in 0..n (bit-reversed powers of the 2n-th root).
    psi_rev: Vec<ShoupScalar>,
    /// psi^{-brv(i)} analogue for the inverse transform.
    psi_inv_rev: Vec<ShoupScalar>,
    n_inv: ShoupScalar,
    /// `psi_inv_rev[1] · N^{-1} mod q`: the last inverse stage's twiddle
    /// with the `N^{-1}` scaling folded in, so the inverse needs no separate
    /// scaling pass.
    inv_last: ShoupScalar,
    psi: u64,
}

impl NttTable {
    /// Builds NTT tables for polynomials of degree `n` modulo `modulus`.
    ///
    /// # Errors
    ///
    /// * [`MathError::InvalidDegree`] if `n` is not a power of two in
    ///   `[8, 2^17]`.
    /// * [`MathError::NoNttSupport`] if `q ≢ 1 (mod 2n)` or no primitive
    ///   `2n`-th root of unity exists (composite modulus).
    pub fn new(modulus: Modulus, n: usize) -> Result<Self, MathError> {
        if !n.is_power_of_two() || !(8..=(1 << 17)).contains(&n) {
            return Err(MathError::InvalidDegree { degree: n });
        }
        let q = modulus.value();
        if !(q - 1).is_multiple_of(2 * n as u64) {
            return Err(MathError::NoNttSupport { modulus: q, degree: n });
        }
        let psi = find_primitive_root(modulus, 2 * n as u64)
            .ok_or(MathError::NoNttSupport { modulus: q, degree: n })?;
        let psi_inv = modulus.inv(psi)?;
        let log_n = n.trailing_zeros();

        let mut psi_rev = vec![ShoupScalar::default(); n];
        let mut psi_inv_rev = vec![ShoupScalar::default(); n];
        let mut power = 1u64;
        let mut power_inv = 1u64;
        for i in 0..n {
            let r = bit_reverse(i as u64, log_n) as usize;
            psi_rev[r] = modulus.shoup(power);
            psi_inv_rev[r] = modulus.shoup(power_inv);
            power = modulus.mul(power, psi);
            power_inv = modulus.mul(power_inv, psi_inv);
        }
        let n_inv_val = modulus.inv(n as u64)?;
        let n_inv = modulus.shoup(n_inv_val);
        let inv_last = modulus.shoup(modulus.mul(psi_inv_rev[1].value, n_inv_val));
        Ok(NttTable { modulus, n, log_n, psi_rev, psi_inv_rev, n_inv, inv_last, psi })
    }

    /// The transform size `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `log2(N)`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The modulus the tables were built for.
    #[inline]
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// The primitive `2N`-th root of unity ψ used by this table.
    #[inline]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Bit-reversed forward twiddles `ψ^brv(i)`; exposed so the Meta-OP
    /// layer can lower the same transform onto `(M_j A_j)_n R_j` streams.
    #[inline]
    pub fn psi_rev(&self) -> &[ShoupScalar] {
        &self.psi_rev
    }

    /// Bit-reversed inverse twiddles.
    #[inline]
    pub fn psi_inv_rev(&self) -> &[ShoupScalar] {
        &self.psi_inv_rev
    }

    /// `N^{-1} mod q` in Shoup form.
    #[inline]
    pub fn n_inv(&self) -> ShoupScalar {
        self.n_inv
    }

    /// With the `strict-checks` feature (or in debug builds), verifies the
    /// lazy input contract once per transform — the per-butterfly checks of
    /// the old eager loops collapse into this single O(n) scan.
    fn check_lazy_inputs(&self, a: &[u64], op: &str) {
        if cfg!(feature = "strict-checks") || cfg!(debug_assertions) {
            let two_q = self.modulus.value() << 1;
            for (i, &x) in a.iter().enumerate() {
                crate::strict_assert!(
                    x < two_q,
                    "input to NttTable::{op} outside [0, 2q) at index {i}: {x}"
                );
            }
        }
    }

    /// In-place forward negacyclic NTT (natural → bit-reversed order),
    /// canonical `[0, q)` output.
    ///
    /// Accepts canonical or lazy `[0, 2q)` inputs. Internally runs Harvey
    /// lazy butterflies with the canonicalizing reduction fused into the
    /// last stage; produces exactly the same output as the textbook eager
    /// transform.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`, or (with the default
    /// `strict-checks` feature) if any input is `≥ 2q`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must match NTT size");
        self.check_lazy_inputs(a, "forward");
        if self.log_n >= BLOCKED_MIN_LOG_N {
            self.fwd_blocked(a, Target::Canonical);
        } else {
            self.fwd_subtree(a, 1, Some(Target::Canonical));
        }
    }

    /// Forward NTT that leaves its output **lazy** in `[0, 2q)`, saving the
    /// final conditional subtraction per element — the software analogue of
    /// the Meta-OP's deferred `R_j` reduction.
    ///
    /// The output equals [`NttTable::forward`] up to one multiple of `q`
    /// per element; downstream lazy-aware consumers
    /// ([`crate::Poly::to_ntt_lazy`] pipelines, [`Modulus::reduce_2q`])
    /// canonicalize when they need to. Accepts the same `[0, 2q)` inputs as
    /// [`NttTable::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`, or (with the default
    /// `strict-checks` feature) if any input is `≥ 2q`.
    pub fn forward_lazy(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must match NTT size");
        self.check_lazy_inputs(a, "forward_lazy");
        if self.log_n >= BLOCKED_MIN_LOG_N {
            self.fwd_blocked(a, Target::Lazy2q);
        } else {
            self.fwd_subtree(a, 1, Some(Target::Lazy2q));
        }
    }

    /// In-place inverse negacyclic NTT (bit-reversed → natural order),
    /// including the `N^{-1}` scaling; canonical `[0, q)` output.
    ///
    /// Runs lazy Gentleman–Sande butterflies (values in `[0, 2q)` across
    /// all layers) with the `N^{-1}` scaling folded into the final stage's
    /// twiddles — no separate scaling pass. Accepts canonical or lazy
    /// `[0, 2q)` inputs and produces exactly the same output as the
    /// textbook eager transform.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`, or (with the default
    /// `strict-checks` feature) if any input is `≥ 2q`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must match NTT size");
        self.check_lazy_inputs(a, "inverse");
        if self.log_n >= BLOCKED_MIN_LOG_N {
            self.inv_blocked(a, Target::Canonical);
        } else {
            self.inv_subtree(a, 1, Some(Target::Canonical));
        }
    }

    /// Inverse NTT with **lazy** `[0, 2q)` output (one conditional
    /// subtraction per element cheaper than [`NttTable::inverse`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`, or (with the default
    /// `strict-checks` feature) if any input is `≥ 2q`.
    pub fn inverse_lazy(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must match NTT size");
        self.check_lazy_inputs(a, "inverse_lazy");
        if self.log_n >= BLOCKED_MIN_LOG_N {
            self.inv_blocked(a, Target::Lazy2q);
        } else {
            self.inv_subtree(a, 1, Some(Target::Lazy2q));
        }
    }

    /// Forward transform of one contiguous CT subtree.
    ///
    /// `a` is a power-of-two-length block and `m0` its twiddle base: the
    /// stage with `g` local groups uses `psi_rev[m0·g + i]` for local group
    /// `i`. The full transform is the subtree at `m0 = 1`; after `k` global
    /// stages, block `r` of length `n/2^k` is the subtree at
    /// `m0 = 2^k + r`. With `finish`, the last (`t == 1`) stage fuses the
    /// finishing reduction into its butterflies, so no separate
    /// normalization pass runs.
    fn fwd_subtree(&self, a: &mut [u64], m0: usize, finish: Option<Target>) {
        let len = a.len();
        debug_assert!(len.is_power_of_two() && len >= 2);
        let q = self.modulus.value();
        let two_q = q << 1;
        let mut t = len;
        let mut groups = 1usize;
        while groups < len {
            t /= 2;
            if t == 1 {
                // Last stage: adjacent pairs, one fresh twiddle per pair —
                // scalar, with the finishing reduction fused in.
                for i in 0..groups {
                    let s = self.psi_rev[m0 * groups + i];
                    let j = 2 * i;
                    let (mut r0, mut r1) = simd::fwd_bfly_scalar(a[j], a[j + 1], s, q, two_q);
                    if let Some(target) = finish {
                        if r0 >= two_q {
                            r0 -= two_q;
                        }
                        if r1 >= two_q {
                            r1 -= two_q;
                        }
                        if target == Target::Canonical {
                            if r0 >= q {
                                r0 -= q;
                            }
                            if r1 >= q {
                                r1 -= q;
                            }
                        }
                    }
                    a[j] = r0;
                    a[j + 1] = r1;
                }
            } else {
                for i in 0..groups {
                    let s = self.psi_rev[m0 * groups + i];
                    let j1 = 2 * i * t;
                    let (top, bot) = a[j1..j1 + 2 * t].split_at_mut(t);
                    simd::fwd_bfly(top, bot, s, q);
                }
            }
            groups *= 2;
        }
    }

    /// Inverse transform of one contiguous GS subtree (see
    /// [`NttTable::fwd_subtree`] for the `m0` convention, here over
    /// `psi_inv_rev`). With `finish`, the last (`groups == 1`) stage runs
    /// the fused `N^{-1}`-folded butterfly — only valid at the global root
    /// (`m0 == 1`), where that stage's twiddle is `psi_inv_rev[1]`.
    fn inv_subtree(&self, a: &mut [u64], m0: usize, finish: Option<Target>) {
        let len = a.len();
        debug_assert!(len.is_power_of_two() && len >= 2);
        let q = self.modulus.value();
        let two_q = q << 1;
        let mut t = 1usize;
        let mut groups = len / 2;
        while groups >= 1 {
            if groups == 1 && finish.is_some() {
                debug_assert_eq!(m0, 1, "the N^-1 fold only applies at the global root");
                let canonical = finish == Some(Target::Canonical);
                let (top, bot) = a.split_at_mut(t);
                simd::inv_bfly_last(top, bot, self.n_inv, self.inv_last, q, canonical);
            } else if t == 1 {
                // First stage: adjacent pairs, scalar.
                for i in 0..groups {
                    let s = self.psi_inv_rev[m0 * groups + i];
                    let j = 2 * i;
                    let (r0, r1) = simd::inv_bfly_scalar(a[j], a[j + 1], s, q, two_q);
                    a[j] = r0;
                    a[j + 1] = r1;
                }
            } else {
                for i in 0..groups {
                    let s = self.psi_inv_rev[m0 * groups + i];
                    let j1 = 2 * i * t;
                    let (top, bot) = a[j1..j1 + 2 * t].split_at_mut(t);
                    simd::inv_bfly(top, bot, s, q);
                }
            }
            t *= 2;
            groups /= 2;
        }
    }

    /// Cache-blocked forward schedule: view the array as an `n1 × n2`
    /// matrix (`n1 = 2^⌊log n / 2⌋`). The first `log n1` global stages only
    /// pair elements within a column, the rest within a row — so transpose,
    /// run `n2` contiguous `n1`-point column subtrees (all at `m0 = 1`,
    /// sharing one hot twiddle table), transpose back, and run `n1`
    /// `n2`-point row subtrees (block `r` at `m0 = n1 + r`) that fuse the
    /// finishing reduction. Bit-identical to the flat loop; only the
    /// traversal order (and thus cache behavior) changes.
    fn fwd_blocked(&self, a: &mut [u64], target: Target) {
        let n1 = 1usize << (self.log_n / 2);
        let n2 = self.n / n1;
        Scratch::with_thread_local(|pool| {
            let mut tmp = pool.take(self.n);
            transpose_into(a, &mut tmp, n1, n2);
            for col in tmp.chunks_exact_mut(n1) {
                self.fwd_subtree(col, 1, None);
            }
            transpose_into(&tmp, a, n2, n1);
            for (r, row) in a.chunks_exact_mut(n2).enumerate() {
                self.fwd_subtree(row, n1 + r, Some(target));
            }
            pool.put(tmp);
        });
    }

    /// Cache-blocked inverse schedule — the forward schedule mirrored:
    /// row subtrees first (no finish), then transposed column subtrees
    /// whose last stage is the global fold stage (`m0 = 1`, `N^{-1}`
    /// folded in), then transpose back.
    fn inv_blocked(&self, a: &mut [u64], target: Target) {
        let n1 = 1usize << (self.log_n / 2);
        let n2 = self.n / n1;
        Scratch::with_thread_local(|pool| {
            let mut tmp = pool.take(self.n);
            for (r, row) in a.chunks_exact_mut(n2).enumerate() {
                self.inv_subtree(row, n1 + r, None);
            }
            transpose_into(a, &mut tmp, n1, n2);
            for col in tmp.chunks_exact_mut(n1) {
                self.inv_subtree(col, 1, Some(target));
            }
            transpose_into(&tmp, a, n2, n1);
            pool.put(tmp);
        });
    }
}

/// Tiled matrix transpose: `src` is `rows × cols` row-major, `dst` becomes
/// `cols × rows` (`dst[c·rows + r] = src[r·cols + c]`). The tile size keeps
/// a source tile plus a destination tile inside L1d, so each cache line is
/// touched once per direction — the software analogue of Alchemist's
/// transpose register file.
pub(crate) fn transpose_into(src: &[u64], dst: &mut [u64], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    // 16×16 u64 tiles: 2 KiB in, 2 KiB out — resident even in a 32 KiB L1d.
    const TILE: usize = 16;
    let mut r0 = 0;
    while r0 < rows {
        let r_end = (r0 + TILE).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c_end = (c0 + TILE).min(cols);
            for r in r0..r_end {
                for c in c0..c_end {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 = c_end;
        }
        r0 = r_end;
    }
}

/// Plain cyclic NTT in *natural* input and output order, used by the
/// 4-step decomposition where explicit matrix transposes carry the data
/// movement (exactly the movement Alchemist's transpose register file
/// performs on chip).
#[derive(Debug, Clone)]
pub struct CyclicNtt {
    modulus: Modulus,
    n: usize,
    log_n: u32,
    /// omega^k for k in 0..n/2, Shoup form.
    pow: Vec<ShoupScalar>,
    /// omega^{-k} for k in 0..n/2, Shoup form.
    pow_inv: Vec<ShoupScalar>,
    n_inv: ShoupScalar,
    omega: u64,
}

impl CyclicNtt {
    /// Builds cyclic NTT tables of size `n` using `omega`, which must be a
    /// primitive `n`-th root of unity modulo `modulus`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidDegree`] for non-power-of-two sizes and
    /// [`MathError::NoNttSupport`] if `omega` is not a primitive `n`-th root.
    pub fn with_root(modulus: Modulus, n: usize, omega: u64) -> Result<Self, MathError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(MathError::InvalidDegree { degree: n });
        }
        if modulus.pow(omega, n as u64) != 1 || modulus.pow(omega, n as u64 / 2) == 1 {
            return Err(MathError::NoNttSupport { modulus: modulus.value(), degree: n });
        }
        let omega_inv = modulus.inv(omega)?;
        let log_n = n.trailing_zeros();
        let mut pow = Vec::with_capacity(n / 2);
        let mut pow_inv = Vec::with_capacity(n / 2);
        let mut power = 1u64;
        let mut power_inv = 1u64;
        for _ in 0..n / 2 {
            pow.push(modulus.shoup(power));
            pow_inv.push(modulus.shoup(power_inv));
            power = modulus.mul(power, omega);
            power_inv = modulus.mul(power_inv, omega_inv);
        }
        let n_inv = modulus.shoup(modulus.inv(n as u64)?);
        Ok(CyclicNtt { modulus, n, log_n, pow, pow_inv, n_inv, omega })
    }

    /// The transform size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The primitive root in use.
    #[inline]
    pub fn omega(&self) -> u64 {
        self.omega
    }

    /// Forward cyclic NTT, natural order in and out:
    /// `out[k] = Σ_i a[i]·ω^{ik}`.
    ///
    /// Implemented as decimation-in-frequency (natural in, bit-reversed out)
    /// followed by a bit-reversal permutation.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward_natural(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = &self.modulus;
        let mut t = self.n / 2;
        while t >= 1 {
            let stride = self.n / (2 * t);
            let mut j1 = 0usize;
            while j1 < self.n {
                for j in 0..t {
                    let u = a[j1 + j];
                    let v = a[j1 + j + t];
                    a[j1 + j] = m.add(u, v);
                    a[j1 + j + t] = m.mul_shoup(m.sub(u, v), self.pow[j * stride]);
                }
                j1 += 2 * t;
            }
            t /= 2;
        }
        bit_reverse_permute(a, self.log_n);
    }

    /// Inverse cyclic NTT, natural order in and out, including the `N^{-1}`
    /// scaling. Exact inverse of [`CyclicNtt::forward_natural`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse_natural(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = &self.modulus;
        bit_reverse_permute(a, self.log_n);
        let mut t = 1usize;
        while t < self.n {
            let stride = self.n / (2 * t);
            let mut j1 = 0usize;
            while j1 < self.n {
                for j in 0..t {
                    let u = a[j1 + j];
                    let v = m.mul_shoup(a[j1 + j + t], self.pow_inv[j * stride]);
                    a[j1 + j] = m.add(u, v);
                    a[j1 + j + t] = m.sub(u, v);
                }
                j1 += 2 * t;
            }
            t *= 2;
        }
        for x in a.iter_mut() {
            *x = m.mul_shoup(*x, self.n_inv);
        }
    }
}

/// Reverses the low `bits` bits of `x`.
#[inline]
pub(crate) fn bit_reverse(x: u64, bits: u32) -> u64 {
    if bits == 0 {
        0
    } else {
        x.reverse_bits() >> (64 - bits)
    }
}

/// In-place bit-reversal permutation.
pub(crate) fn bit_reverse_permute(a: &mut [u64], bits: u32) {
    for i in 0..a.len() {
        let j = bit_reverse(i as u64, bits) as usize;
        if j > i {
            a.swap(i, j);
        }
    }
}

/// Finds a primitive `order`-th root of unity modulo a prime, or `None` if
/// the modulus is composite / the order does not divide `q - 1`.
pub(crate) fn find_primitive_root(modulus: Modulus, order: u64) -> Option<u64> {
    let q = modulus.value();
    if !(q - 1).is_multiple_of(order) {
        return None;
    }
    let cofactor = (q - 1) / order;
    for candidate in 2..q.min(1000) {
        let root = modulus.pow(candidate, cofactor);
        // Primitive iff root^(order/2) == -1 (order is a power of two here).
        if modulus.pow(root, order / 2) == q - 1 {
            return Some(root);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ntt_primes;

    fn table(bits: u32, n: usize) -> NttTable {
        let q = Modulus::new(generate_ntt_primes(bits, n, 1).unwrap()[0]).unwrap();
        NttTable::new(q, n).unwrap()
    }

    fn schoolbook_negacyclic(a: &[u64], b: &[u64], m: &Modulus) -> Vec<u64> {
        let n = a.len();
        let mut out = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                let p = m.mul(a[i], b[j]);
                if i + j < n {
                    out[i + j] = m.add(out[i + j], p);
                } else {
                    out[i + j - n] = m.sub(out[i + j - n], p);
                }
            }
        }
        out
    }

    /// The textbook eager CT loop the production path replaced: canonical
    /// reduction after every butterfly. Kept as the oracle the lazy,
    /// vectorized, cache-blocked transforms must match bit-for-bit.
    fn reference_forward(t: &NttTable, a: &mut [u64]) {
        let m = t.modulus();
        let n = a.len();
        let mut tt = n;
        let mut groups = 1usize;
        while groups < n {
            tt /= 2;
            for i in 0..groups {
                let s = t.psi_rev()[groups + i];
                let j1 = 2 * i * tt;
                for j in j1..j1 + tt {
                    let u = a[j];
                    let v = m.mul_shoup(a[j + tt], s);
                    a[j] = m.add(u, v);
                    a[j + tt] = m.sub(u, v);
                }
            }
            groups *= 2;
        }
    }

    /// Textbook eager GS loop with the separate `N^{-1}` scaling pass.
    fn reference_inverse(t: &NttTable, a: &mut [u64]) {
        let m = t.modulus();
        let n = a.len();
        let mut tt = 1usize;
        let mut groups = n / 2;
        while groups >= 1 {
            let mut j1 = 0usize;
            for i in 0..groups {
                let s = t.psi_inv_rev()[groups + i];
                for j in j1..j1 + tt {
                    let u = a[j];
                    let v = a[j + tt];
                    a[j] = m.add(u, v);
                    a[j + tt] = m.mul_shoup(m.sub(u, v), s);
                }
                j1 += 2 * tt;
            }
            tt *= 2;
            groups /= 2;
        }
        for x in a.iter_mut() {
            *x = m.mul_shoup(*x, t.n_inv());
        }
    }

    fn ramp(n: usize, q: u64) -> Vec<u64> {
        (0..n as u64).map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15)) % q).collect()
    }

    #[test]
    fn round_trip_identity() {
        // 8192 and 16384 exercise the cache-blocked schedule.
        for n in [8usize, 64, 1024, 8192, 16384] {
            let t = table(36, n);
            let mut a = ramp(n, t.modulus().value());
            let original = a.clone();
            t.forward(&mut a);
            assert_ne!(a, original, "forward must change a generic vector");
            t.inverse(&mut a);
            assert_eq!(a, original, "n={n}");
        }
    }

    #[test]
    fn forward_matches_eager_reference() {
        for bits in [36u32, 60] {
            for n in [8usize, 64, 512, 8192] {
                let t = table(bits, n);
                let mut a = ramp(n, t.modulus().value());
                let mut r = a.clone();
                t.forward(&mut a);
                reference_forward(&t, &mut r);
                assert_eq!(a, r, "bits={bits} n={n}");
            }
        }
    }

    #[test]
    fn inverse_matches_eager_reference() {
        for bits in [36u32, 60] {
            for n in [8usize, 64, 512, 8192] {
                let t = table(bits, n);
                let mut a = ramp(n, t.modulus().value());
                let mut r = a.clone();
                t.inverse(&mut a);
                reference_inverse(&t, &mut r);
                assert_eq!(a, r, "bits={bits} n={n}");
            }
        }
    }

    #[test]
    fn lazy_forward_matches_canonical_mod_q() {
        for bits in [36u32, 60] {
            for n in [8usize, 64, 512, 8192] {
                let t = table(bits, n);
                let q = t.modulus();
                let mut a = ramp(n, q.value());
                let mut b = a.clone();
                t.forward(&mut a);
                t.forward_lazy(&mut b);
                for i in 0..n {
                    assert!(b[i] < 2 * q.value(), "lazy output ≥ 2q, bits={bits} n={n} i={i}");
                    assert_eq!(a[i], q.reduce_2q(b[i]), "bits={bits} n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn lazy_inverse_matches_canonical_mod_q() {
        for n in [8usize, 512, 8192] {
            let t = table(60, n);
            let q = t.modulus();
            let mut a = ramp(n, q.value());
            let mut b = a.clone();
            t.inverse(&mut a);
            t.inverse_lazy(&mut b);
            for i in 0..n {
                assert!(b[i] < 2 * q.value(), "lazy output ≥ 2q, n={n} i={i}");
                assert_eq!(a[i], q.reduce_2q(b[i]), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn forward_worst_case_inputs() {
        // All coefficients at q-1 stress the 4q bound, in both directions
        // and through the blocked schedule.
        for n in [256usize, 8192] {
            let q = Modulus::new(generate_ntt_primes(60, n, 1).unwrap()[0]).unwrap();
            let t = NttTable::new(q, n).unwrap();
            let mut a = vec![q.value() - 1; n];
            let mut r = a.clone();
            t.forward(&mut a);
            reference_forward(&t, &mut r);
            assert_eq!(a, r, "n={n}");
        }
    }

    #[test]
    fn forward_accepts_lazy_inputs() {
        // x and x + q must transform to the same canonical evaluations.
        let n = 512;
        let t = table(60, n);
        let q = t.modulus().value();
        let mut canon = ramp(n, q);
        let mut lazy: Vec<u64> =
            canon.iter().enumerate().map(|(i, &x)| if i % 3 == 0 { x + q } else { x }).collect();
        t.forward(&mut canon);
        t.forward(&mut lazy);
        assert_eq!(canon, lazy);
    }

    #[test]
    fn convolution_matches_schoolbook() {
        let n = 32;
        let t = table(36, n);
        let m = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 3) % m.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (7 * i + 11) % m.value()).collect();
        let expected = schoolbook_negacyclic(&a, &b, &m);

        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| m.mul(x, y)).collect();
        t.inverse(&mut prod);
        assert_eq!(prod, expected);
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // X^(n-1) * X = X^n = -1 in Z_q[X]/(X^n+1).
        let n = 16;
        let t = table(36, n);
        let m = t.modulus();
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        a[n - 1] = 1;
        b[1] = 1;
        t.forward(&mut a);
        t.forward(&mut b);
        let mut prod: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.mul(x, y)).collect();
        t.inverse(&mut prod);
        assert_eq!(prod[0], m.value() - 1);
        assert!(prod[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn transpose_round_trip() {
        for (rows, cols) in [(4usize, 8usize), (16, 16), (64, 128), (37, 5)] {
            let src: Vec<u64> = (0..(rows * cols) as u64).collect();
            let mut t = vec![0u64; rows * cols];
            let mut back = vec![0u64; rows * cols];
            transpose_into(&src, &mut t, rows, cols);
            assert_eq!(t[1], src[cols], "t[(c=0,r=1)] = src[(r=1,c=0)]");
            transpose_into(&t, &mut back, cols, rows);
            assert_eq!(back, src, "rows={rows} cols={cols}");
        }
    }

    #[test]
    fn cyclic_forward_matches_naive_dft() {
        let n = 16usize;
        let q = Modulus::new(generate_ntt_primes(36, n, 1).unwrap()[0]).unwrap();
        // omega = psi^2 where psi is the 2n-th root.
        let t = NttTable::new(q, n).unwrap();
        let omega = q.mul(t.psi(), t.psi());
        let c = CyclicNtt::with_root(q, n, omega).unwrap();
        let a: Vec<u64> = (1..=n as u64).collect();
        let mut fast = a.clone();
        c.forward_natural(&mut fast);
        #[allow(clippy::needless_range_loop)] // index math mirrors the DFT sum
        for k in 0..n {
            let mut acc = 0u64;
            for i in 0..n {
                acc = q.add(acc, q.mul(a[i], q.pow(omega, (i * k) as u64)));
            }
            assert_eq!(fast[k], acc, "k={k}");
        }
        let mut back = fast.clone();
        c.inverse_natural(&mut back);
        assert_eq!(back, a);
    }

    #[test]
    fn rejects_wrong_sizes_and_roots() {
        let q = Modulus::new(generate_ntt_primes(36, 64, 1).unwrap()[0]).unwrap();
        assert!(NttTable::new(q, 48).is_err());
        assert!(CyclicNtt::with_root(q, 16, 1).is_err());
    }

    #[test]
    fn bit_reverse_basic() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 0), 0);
    }
}
