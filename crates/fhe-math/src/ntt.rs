//! Negacyclic number-theoretic transforms.
//!
//! [`NttTable`] implements the in-place iterative Cooley–Tukey (forward) /
//! Gentleman–Sande (inverse) negacyclic NTT over `Z_q[X]/(X^N + 1)` with
//! Shoup-precomputed twiddles, following the standard bit-reversed-twiddle
//! formulation (Longa–Naehrig). [`CyclicNtt`] is the plain cyclic transform
//! used as a building block of the 4-step NTT ([`crate::FourStepNtt`]) that
//! Alchemist's slot-based data management relies on (paper §5.3).

use crate::modulus::ShoupScalar;
use crate::{MathError, Modulus};

/// Precomputed tables for the negacyclic NTT of a fixed size and modulus.
///
/// The forward transform maps coefficients (natural order) to evaluations in
/// *bit-reversed* order; the inverse consumes that order. All polynomial
/// arithmetic in this workspace keeps NTT-domain data in this matched order,
/// so the order never leaks.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_math::MathError> {
/// use fhe_math::{generate_ntt_primes, Modulus, NttTable};
/// let q = Modulus::new(generate_ntt_primes(36, 64, 1)?[0])?;
/// let table = NttTable::new(q, 64)?;
/// let mut a = vec![0u64; 64];
/// a[1] = 1; // X
/// let mut b = a.clone();
/// table.forward(&mut a);
/// table.forward(&mut b);
/// let mut prod: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.mul(x, y)).collect();
/// table.inverse(&mut prod);
/// assert_eq!(prod[2], 1); // X * X = X^2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    modulus: Modulus,
    n: usize,
    log_n: u32,
    /// psi^brv(i) for i in 0..n (bit-reversed powers of the 2n-th root).
    psi_rev: Vec<ShoupScalar>,
    /// psi^{-brv(i)} analogue for the inverse transform.
    psi_inv_rev: Vec<ShoupScalar>,
    n_inv: ShoupScalar,
    psi: u64,
}

impl NttTable {
    /// Builds NTT tables for polynomials of degree `n` modulo `modulus`.
    ///
    /// # Errors
    ///
    /// * [`MathError::InvalidDegree`] if `n` is not a power of two in
    ///   `[8, 2^17]`.
    /// * [`MathError::NoNttSupport`] if `q ≢ 1 (mod 2n)` or no primitive
    ///   `2n`-th root of unity exists (composite modulus).
    pub fn new(modulus: Modulus, n: usize) -> Result<Self, MathError> {
        if !n.is_power_of_two() || !(8..=(1 << 17)).contains(&n) {
            return Err(MathError::InvalidDegree { degree: n });
        }
        let q = modulus.value();
        if !(q - 1).is_multiple_of(2 * n as u64) {
            return Err(MathError::NoNttSupport { modulus: q, degree: n });
        }
        let psi = find_primitive_root(modulus, 2 * n as u64)
            .ok_or(MathError::NoNttSupport { modulus: q, degree: n })?;
        let psi_inv = modulus.inv(psi)?;
        let log_n = n.trailing_zeros();

        let mut psi_rev = vec![ShoupScalar::default(); n];
        let mut psi_inv_rev = vec![ShoupScalar::default(); n];
        let mut power = 1u64;
        let mut power_inv = 1u64;
        for i in 0..n {
            let r = bit_reverse(i as u64, log_n) as usize;
            psi_rev[r] = modulus.shoup(power);
            psi_inv_rev[r] = modulus.shoup(power_inv);
            power = modulus.mul(power, psi);
            power_inv = modulus.mul(power_inv, psi_inv);
        }
        let n_inv = modulus.shoup(modulus.inv(n as u64)?);
        Ok(NttTable { modulus, n, log_n, psi_rev, psi_inv_rev, n_inv, psi })
    }

    /// The transform size `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `log2(N)`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The modulus the tables were built for.
    #[inline]
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// The primitive `2N`-th root of unity ψ used by this table.
    #[inline]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Bit-reversed forward twiddles `ψ^brv(i)`; exposed so the Meta-OP
    /// layer can lower the same transform onto `(M_j A_j)_n R_j` streams.
    #[inline]
    pub fn psi_rev(&self) -> &[ShoupScalar] {
        &self.psi_rev
    }

    /// Bit-reversed inverse twiddles.
    #[inline]
    pub fn psi_inv_rev(&self) -> &[ShoupScalar] {
        &self.psi_inv_rev
    }

    /// `N^{-1} mod q` in Shoup form.
    #[inline]
    pub fn n_inv(&self) -> ShoupScalar {
        self.n_inv
    }

    /// In-place forward negacyclic NTT (natural → bit-reversed order).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must match NTT size");
        let m = &self.modulus;
        let mut t = self.n;
        let mut groups = 1usize;
        while groups < self.n {
            t /= 2;
            for i in 0..groups {
                let s = self.psi_rev[groups + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = m.mul_shoup(a[j + t], s);
                    a[j] = m.add(u, v);
                    a[j + t] = m.sub(u, v);
                }
            }
            groups *= 2;
        }
    }

    /// Forward NTT with **lazy (Harvey) butterflies**: intermediate values
    /// stay in `[0, 4q)` and only one canonicalizing pass runs at the end —
    /// the software analogue of the Meta-OP's deferred `R_j` reduction.
    /// Produces exactly the same output as [`NttTable::forward`], typically
    /// 20–40% faster (see the `kernels` bench).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward_lazy(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must match NTT size");
        let q = self.modulus.value();
        let two_q = 2 * q;
        let mut t = self.n;
        let mut groups = 1usize;
        while groups < self.n {
            t /= 2;
            for i in 0..groups {
                let s = self.psi_rev[groups + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    // Harvey butterfly: u in [0, 2q), v in [0, 2q); outputs
                    // in [0, 4q).
                    let mut u = a[j];
                    if u >= two_q {
                        u -= two_q;
                    }
                    let x = a[j + t];
                    let qhat = ((x as u128 * s.quotient as u128) >> 64) as u64;
                    let v = x.wrapping_mul(s.value).wrapping_sub(qhat.wrapping_mul(q));
                    a[j] = u + v;
                    a[j + t] = u + two_q - v;
                }
            }
            groups *= 2;
        }
        for x in a.iter_mut() {
            let mut v = *x;
            if v >= two_q {
                v -= two_q;
            }
            if v >= q {
                v -= q;
            }
            *x = v;
        }
    }

    /// In-place inverse negacyclic NTT (bit-reversed → natural order),
    /// including the `N^{-1}` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must match NTT size");
        let m = &self.modulus;
        let mut t = 1usize;
        let mut groups = self.n / 2;
        while groups >= 1 {
            let mut j1 = 0usize;
            for i in 0..groups {
                let s = self.psi_inv_rev[groups + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = m.add(u, v);
                    a[j + t] = m.mul_shoup(m.sub(u, v), s);
                }
                j1 += 2 * t;
            }
            t *= 2;
            groups /= 2;
        }
        for x in a.iter_mut() {
            *x = m.mul_shoup(*x, self.n_inv);
        }
    }
}

/// Plain cyclic NTT in *natural* input and output order, used by the
/// 4-step decomposition where explicit matrix transposes carry the data
/// movement (exactly the movement Alchemist's transpose register file
/// performs on chip).
#[derive(Debug, Clone)]
pub struct CyclicNtt {
    modulus: Modulus,
    n: usize,
    log_n: u32,
    /// omega^k for k in 0..n/2, Shoup form.
    pow: Vec<ShoupScalar>,
    /// omega^{-k} for k in 0..n/2, Shoup form.
    pow_inv: Vec<ShoupScalar>,
    n_inv: ShoupScalar,
    omega: u64,
}

impl CyclicNtt {
    /// Builds cyclic NTT tables of size `n` using `omega`, which must be a
    /// primitive `n`-th root of unity modulo `modulus`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidDegree`] for non-power-of-two sizes and
    /// [`MathError::NoNttSupport`] if `omega` is not a primitive `n`-th root.
    pub fn with_root(modulus: Modulus, n: usize, omega: u64) -> Result<Self, MathError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(MathError::InvalidDegree { degree: n });
        }
        if modulus.pow(omega, n as u64) != 1 || modulus.pow(omega, n as u64 / 2) == 1 {
            return Err(MathError::NoNttSupport { modulus: modulus.value(), degree: n });
        }
        let omega_inv = modulus.inv(omega)?;
        let log_n = n.trailing_zeros();
        let mut pow = Vec::with_capacity(n / 2);
        let mut pow_inv = Vec::with_capacity(n / 2);
        let mut power = 1u64;
        let mut power_inv = 1u64;
        for _ in 0..n / 2 {
            pow.push(modulus.shoup(power));
            pow_inv.push(modulus.shoup(power_inv));
            power = modulus.mul(power, omega);
            power_inv = modulus.mul(power_inv, omega_inv);
        }
        let n_inv = modulus.shoup(modulus.inv(n as u64)?);
        Ok(CyclicNtt { modulus, n, log_n, pow, pow_inv, n_inv, omega })
    }

    /// The transform size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The primitive root in use.
    #[inline]
    pub fn omega(&self) -> u64 {
        self.omega
    }

    /// Forward cyclic NTT, natural order in and out:
    /// `out[k] = Σ_i a[i]·ω^{ik}`.
    ///
    /// Implemented as decimation-in-frequency (natural in, bit-reversed out)
    /// followed by a bit-reversal permutation.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward_natural(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = &self.modulus;
        let mut t = self.n / 2;
        while t >= 1 {
            let stride = self.n / (2 * t);
            let mut j1 = 0usize;
            while j1 < self.n {
                for j in 0..t {
                    let u = a[j1 + j];
                    let v = a[j1 + j + t];
                    a[j1 + j] = m.add(u, v);
                    a[j1 + j + t] = m.mul_shoup(m.sub(u, v), self.pow[j * stride]);
                }
                j1 += 2 * t;
            }
            t /= 2;
        }
        bit_reverse_permute(a, self.log_n);
    }

    /// Inverse cyclic NTT, natural order in and out, including the `N^{-1}`
    /// scaling. Exact inverse of [`CyclicNtt::forward_natural`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse_natural(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let m = &self.modulus;
        bit_reverse_permute(a, self.log_n);
        let mut t = 1usize;
        while t < self.n {
            let stride = self.n / (2 * t);
            let mut j1 = 0usize;
            while j1 < self.n {
                for j in 0..t {
                    let u = a[j1 + j];
                    let v = m.mul_shoup(a[j1 + j + t], self.pow_inv[j * stride]);
                    a[j1 + j] = m.add(u, v);
                    a[j1 + j + t] = m.sub(u, v);
                }
                j1 += 2 * t;
            }
            t *= 2;
        }
        for x in a.iter_mut() {
            *x = m.mul_shoup(*x, self.n_inv);
        }
    }
}

/// Reverses the low `bits` bits of `x`.
#[inline]
pub(crate) fn bit_reverse(x: u64, bits: u32) -> u64 {
    if bits == 0 {
        0
    } else {
        x.reverse_bits() >> (64 - bits)
    }
}

/// In-place bit-reversal permutation.
pub(crate) fn bit_reverse_permute(a: &mut [u64], bits: u32) {
    for i in 0..a.len() {
        let j = bit_reverse(i as u64, bits) as usize;
        if j > i {
            a.swap(i, j);
        }
    }
}

/// Finds a primitive `order`-th root of unity modulo a prime, or `None` if
/// the modulus is composite / the order does not divide `q - 1`.
pub(crate) fn find_primitive_root(modulus: Modulus, order: u64) -> Option<u64> {
    let q = modulus.value();
    if !(q - 1).is_multiple_of(order) {
        return None;
    }
    let cofactor = (q - 1) / order;
    for candidate in 2..q.min(1000) {
        let root = modulus.pow(candidate, cofactor);
        // Primitive iff root^(order/2) == -1 (order is a power of two here).
        if modulus.pow(root, order / 2) == q - 1 {
            return Some(root);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ntt_primes;

    fn table(bits: u32, n: usize) -> NttTable {
        let q = Modulus::new(generate_ntt_primes(bits, n, 1).unwrap()[0]).unwrap();
        NttTable::new(q, n).unwrap()
    }

    fn schoolbook_negacyclic(a: &[u64], b: &[u64], m: &Modulus) -> Vec<u64> {
        let n = a.len();
        let mut out = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                let p = m.mul(a[i], b[j]);
                if i + j < n {
                    out[i + j] = m.add(out[i + j], p);
                } else {
                    out[i + j - n] = m.sub(out[i + j - n], p);
                }
            }
        }
        out
    }

    #[test]
    fn round_trip_identity() {
        for n in [8usize, 64, 1024] {
            let t = table(36, n);
            let mut a: Vec<u64> =
                (0..n as u64).map(|i| (i * 2654435761) % t.modulus().value()).collect();
            let original = a.clone();
            t.forward(&mut a);
            assert_ne!(a, original, "forward must change a generic vector");
            t.inverse(&mut a);
            assert_eq!(a, original);
        }
    }

    #[test]
    fn lazy_forward_matches_canonical() {
        for bits in [36u32, 60] {
            for n in [8usize, 64, 512] {
                let q = Modulus::new(generate_ntt_primes(bits, n, 1).unwrap()[0]).unwrap();
                let t = NttTable::new(q, n).unwrap();
                let mut a: Vec<u64> = (0..n as u64)
                    .map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15)) % q.value())
                    .collect();
                let mut b = a.clone();
                t.forward(&mut a);
                t.forward_lazy(&mut b);
                assert_eq!(a, b, "bits={bits} n={n}");
            }
        }
    }

    #[test]
    fn lazy_forward_worst_case_inputs() {
        // All coefficients at q-1 stress the 4q bound.
        let n = 256;
        let q = Modulus::new(generate_ntt_primes(60, n, 1).unwrap()[0]).unwrap();
        let t = NttTable::new(q, n).unwrap();
        let mut a = vec![q.value() - 1; n];
        let mut b = a.clone();
        t.forward(&mut a);
        t.forward_lazy(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn convolution_matches_schoolbook() {
        let n = 32;
        let t = table(36, n);
        let m = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 3) % m.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (7 * i + 11) % m.value()).collect();
        let expected = schoolbook_negacyclic(&a, &b, &m);

        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| m.mul(x, y)).collect();
        t.inverse(&mut prod);
        assert_eq!(prod, expected);
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // X^(n-1) * X = X^n = -1 in Z_q[X]/(X^n+1).
        let n = 16;
        let t = table(36, n);
        let m = t.modulus();
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        a[n - 1] = 1;
        b[1] = 1;
        t.forward(&mut a);
        t.forward(&mut b);
        let mut prod: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.mul(x, y)).collect();
        t.inverse(&mut prod);
        assert_eq!(prod[0], m.value() - 1);
        assert!(prod[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn cyclic_forward_matches_naive_dft() {
        let n = 16usize;
        let q = Modulus::new(generate_ntt_primes(36, n, 1).unwrap()[0]).unwrap();
        // omega = psi^2 where psi is the 2n-th root.
        let t = NttTable::new(q, n).unwrap();
        let omega = q.mul(t.psi(), t.psi());
        let c = CyclicNtt::with_root(q, n, omega).unwrap();
        let a: Vec<u64> = (1..=n as u64).collect();
        let mut fast = a.clone();
        c.forward_natural(&mut fast);
        #[allow(clippy::needless_range_loop)] // index math mirrors the DFT sum
        for k in 0..n {
            let mut acc = 0u64;
            for i in 0..n {
                acc = q.add(acc, q.mul(a[i], q.pow(omega, (i * k) as u64)));
            }
            assert_eq!(fast[k], acc, "k={k}");
        }
        let mut back = fast.clone();
        c.inverse_natural(&mut back);
        assert_eq!(back, a);
    }

    #[test]
    fn rejects_wrong_sizes_and_roots() {
        let q = Modulus::new(generate_ntt_primes(36, 64, 1).unwrap()[0]).unwrap();
        assert!(NttTable::new(q, 48).is_err());
        assert!(CyclicNtt::with_root(q, 16, 1).is_err());
    }

    #[test]
    fn bit_reverse_basic() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 0), 0);
    }
}
