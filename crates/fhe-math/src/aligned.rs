//! 64-byte-aligned coefficient storage for SIMD kernels.
//!
//! [`AVec`] is a `Vec<u64>` stand-in whose backing allocation is aligned to
//! a cache line (64 bytes = one AVX-512 register, two AVX2 registers). The
//! SIMD kernels in [`crate::simd`] use unaligned loads so *correctness*
//! never depends on alignment, but aligned, cache-line-granular buffers keep
//! every vector access within a single line and let the hardware prefetcher
//! run at full stride — the software analogue of Alchemist's banked
//! scratchpad, where a Meta-OP operand always occupies whole rows.
//!
//! The public API mirrors the small subset of `Vec` the polynomial layer
//! needs; element access goes through `Deref<Target = [u64]>`, so an `AVec`
//! drops into any `&[u64]`/`&mut [u64]` call site unchanged.

use std::ops::{Deref, DerefMut};

/// One cache line of coefficients. `repr(C, align(64))` makes a
/// `Vec<Align64>` a contiguous, 64-byte-aligned `u64` arena.
#[repr(C, align(64))]
#[derive(Clone, Copy, Debug)]
struct Align64([u64; 8]);

const LANE: usize = 8;

/// A 64-byte-aligned, fixed-capacity-per-line vector of `u64` coefficients.
///
/// # Example
///
/// ```
/// use fhe_math::AVec;
/// let v = AVec::from_slice(&[1, 2, 3]);
/// assert_eq!(&v[..], &[1, 2, 3]);
/// assert_eq!(v.as_ptr() as usize % 64, 0);
/// ```
#[derive(Clone, Default)]
pub struct AVec {
    blocks: Vec<Align64>,
    len: usize,
}

impl AVec {
    /// An empty vector (no allocation).
    pub const fn new() -> Self {
        AVec { blocks: Vec::new(), len: 0 }
    }

    /// A zero-filled vector of length `len`.
    pub fn zeroed(len: usize) -> Self {
        AVec { blocks: vec![Align64([0; LANE]); len.div_ceil(LANE)], len }
    }

    /// Copies a slice into freshly aligned storage.
    pub fn from_slice(data: &[u64]) -> Self {
        let mut v = AVec::zeroed(data.len());
        v.copy_from_slice(data);
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grows or shrinks to `new_len`, zero-filling any new tail. Shrinking
    /// re-zeroes the abandoned tail so pooled capacity never leaks stale
    /// coefficients back into a later grow.
    pub fn resize(&mut self, new_len: usize) {
        if new_len < self.len {
            let start = new_len;
            let end = self.len;
            self.raw_mut()[start..end].fill(0);
        }
        self.blocks.resize(new_len.div_ceil(LANE), Align64([0; LANE]));
        self.len = new_len;
    }

    /// The full backing arena including the zero slack of the last line.
    #[inline]
    fn raw_mut(&mut self) -> &mut [u64] {
        let words = self.blocks.len() * LANE;
        // SAFETY: `blocks` is a contiguous `Vec` of `repr(C)` arrays of
        // `u64`, so the allocation holds exactly `blocks.len() * 8` valid,
        // initialized `u64`s starting at `blocks.as_ptr()`.
        unsafe { std::slice::from_raw_parts_mut(self.blocks.as_mut_ptr().cast::<u64>(), words) }
    }
}

impl Deref for AVec {
    type Target = [u64];

    #[inline]
    fn deref(&self) -> &[u64] {
        // SAFETY: see `raw_mut`; `len <= blocks.len() * 8` by construction.
        unsafe { std::slice::from_raw_parts(self.blocks.as_ptr().cast::<u64>(), self.len) }
    }
}

impl DerefMut for AVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u64] {
        let len = self.len;
        // SAFETY: see `raw_mut`; `len <= blocks.len() * 8` by construction.
        unsafe { std::slice::from_raw_parts_mut(self.blocks.as_mut_ptr().cast::<u64>(), len) }
    }
}

impl From<Vec<u64>> for AVec {
    fn from(v: Vec<u64>) -> Self {
        AVec::from_slice(&v)
    }
}

impl FromIterator<u64> for AVec {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut out = AVec::new();
        let iter = iter.into_iter();
        out.blocks.reserve(iter.size_hint().0.div_ceil(LANE));
        for x in iter {
            if out.len.is_multiple_of(LANE) {
                out.blocks.push(Align64([0; LANE]));
            }
            out.blocks[out.len / LANE].0[out.len % LANE] = x;
            out.len += 1;
        }
        out
    }
}

impl std::fmt::Debug for AVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl PartialEq for AVec {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for AVec {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_contents() {
        for len in [0usize, 1, 7, 8, 9, 64, 1000] {
            let data: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
            let v = AVec::from_slice(&data);
            assert_eq!(&v[..], &data[..], "len={len}");
            if len > 0 {
                assert_eq!(v.as_ptr() as usize % 64, 0, "len={len}");
            }
        }
    }

    #[test]
    fn from_iter_matches_from_slice() {
        let data: Vec<u64> = (0..37).collect();
        let a: AVec = data.iter().copied().collect();
        let b = AVec::from_slice(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn resize_zero_fills_and_shrink_clears_slack() {
        let mut v = AVec::from_slice(&[7; 12]);
        v.resize(20);
        assert_eq!(v.len(), 20);
        assert!(v[12..].iter().all(|&x| x == 0));
        v.resize(4);
        v.resize(16);
        assert!(v[4..].iter().all(|&x| x == 0), "shrunken tail must re-zero");
        assert_eq!(&v[..4], &[7; 4]);
    }

    #[test]
    fn mutation_through_deref() {
        let mut v = AVec::zeroed(10);
        v[3] = 42;
        v.iter_mut().for_each(|x| *x += 1);
        assert_eq!(v[3], 43);
        assert_eq!(v[0], 1);
    }
}
