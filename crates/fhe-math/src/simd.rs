//! Runtime-dispatched SIMD kernels for the modular hot loops.
//!
//! This module is the software stand-in for Alchemist's wide multiplier
//! arrays: the Harvey lazy butterflies (paper Table 2), Shoup multiplies,
//! and the element-wise RNS passes all vectorize the same way the hardware
//! lays them across lanes. Three backends share one set of entry points:
//!
//! * **scalar** — always compiled, the reference implementation; every
//!   other backend must be bit-identical to it (asserted by the
//!   conformance differential suite),
//! * **AVX2** (`x86_64`) — 4×64-bit lanes; 64-bit multiplies are emulated
//!   with `_mm256_mul_epu32` schoolbook products,
//! * **NEON** (`aarch64`) — 2×64-bit lanes via `vmull_u32` widening.
//!
//! Dispatch is *runtime*: the backend is detected once per process
//! (`is_x86_feature_detected!` / target arch), can be disabled per-process
//! with the `ALCHEMIST_SIMD=0` environment variable or per-call-site with
//! [`set_force_scalar`] (the differential tests toggle it), and is compiled
//! out entirely when the `simd` cargo feature is off. Values never change
//! with the backend — only the schedule does.
//!
//! # Lazy value ranges
//!
//! Kernels here follow the Harvey lazy-reduction contract documented in
//! DESIGN.md §14: forward butterflies keep values in `[0, 4q)`, inverse
//! butterflies in `[0, 2q)`, and [`Modulus::mul_shoup_lazy`] returns
//! `[0, 2q)` for *any* `u64` input. All of it requires `q < 2^61`
//! ([`crate::modulus::MAX_MODULUS_BITS`]), which keeps `4q < 2^63` and every
//! lazy add below `u64::MAX`.

use crate::modulus::ShoupScalar;
use crate::Modulus;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Which kernel implementation is active (see [`active_backend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar loops (always available; the reference semantics).
    Scalar,
    /// AVX2 4-lane kernels (x86_64, runtime-detected).
    Avx2,
    /// NEON 2-lane kernels (aarch64 baseline).
    Neon,
}

impl Backend {
    /// Stable lowercase name, used in bench metadata and reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

/// Runtime kill switch: when `true`, every kernel takes the scalar path
/// regardless of detection. Used by the SIMD/scalar differential tests.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) the scalar fallback at runtime.
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether [`set_force_scalar`] is currently active.
pub fn force_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// One-time hardware detection (also honors `ALCHEMIST_SIMD=0`/`off`).
fn detected() -> Backend {
    if let Some(v) = std::env::var_os("ALCHEMIST_SIMD") {
        let v = v.to_string_lossy().to_ascii_lowercase();
        if v == "0" || v == "off" || v == "scalar" {
            return Backend::Scalar;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return Backend::Neon;
    }
    #[allow(unreachable_code)]
    Backend::Scalar
}

/// The backend the next kernel call will use: scalar when the `simd`
/// feature is off or [`set_force_scalar`] is armed, the detected hardware
/// backend otherwise.
#[inline]
pub fn active_backend() -> Backend {
    if !cfg!(feature = "simd") || FORCE_SCALAR.load(Ordering::Relaxed) {
        return Backend::Scalar;
    }
    static DETECTED: OnceLock<Backend> = OnceLock::new();
    *DETECTED.get_or_init(detected)
}

/// Minimum slice length before a vector path is attempted; shorter slices
/// run scalar (the dispatch branch would dominate).
const MIN_VECTOR_LEN: usize = 8;

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------

/// Lazy Shoup product: `a * w mod q` up to one multiple of `q`, i.e. a value
/// in `[0, 2q)` congruent to the product — valid for *any* `u64` input `a`
/// (Harvey's bound: the error is `< q·(1 + a/2^64) < 2q`).
#[inline(always)]
pub(crate) fn mul_shoup_lazy_scalar(a: u64, w: ShoupScalar, q: u64) -> u64 {
    let qhat = ((a as u128 * w.quotient as u128) >> 64) as u64;
    a.wrapping_mul(w.value).wrapping_sub(qhat.wrapping_mul(q))
}

/// One forward (CT) Harvey butterfly on scalars: inputs `< 4q`, outputs
/// `< 4q`.
#[inline(always)]
pub(crate) fn fwd_bfly_scalar(u: u64, x: u64, s: ShoupScalar, q: u64, two_q: u64) -> (u64, u64) {
    let u = if u >= two_q { u - two_q } else { u };
    let v = mul_shoup_lazy_scalar(x, s, q);
    (u + v, u + two_q - v)
}

/// One inverse (GS) Harvey butterfly on scalars: inputs `< 2q`, outputs
/// `< 2q`.
#[inline(always)]
pub(crate) fn inv_bfly_scalar(u: u64, v: u64, s: ShoupScalar, q: u64, two_q: u64) -> (u64, u64) {
    let mut t0 = u + v;
    if t0 >= two_q {
        t0 -= two_q;
    }
    (t0, mul_shoup_lazy_scalar(u + two_q - v, s, q))
}

fn fwd_bfly_slice_scalar(top: &mut [u64], bot: &mut [u64], s: ShoupScalar, q: u64) {
    let two_q = q << 1;
    for (t, b) in top.iter_mut().zip(bot.iter_mut()) {
        let (nt, nb) = fwd_bfly_scalar(*t, *b, s, q, two_q);
        *t = nt;
        *b = nb;
    }
}

fn inv_bfly_slice_scalar(top: &mut [u64], bot: &mut [u64], s: ShoupScalar, q: u64) {
    let two_q = q << 1;
    for (t, b) in top.iter_mut().zip(bot.iter_mut()) {
        let (nt, nb) = inv_bfly_scalar(*t, *b, s, q, two_q);
        *t = nt;
        *b = nb;
    }
}

fn inv_bfly_last_slice_scalar(
    top: &mut [u64],
    bot: &mut [u64],
    n_inv: ShoupScalar,
    s_ninv: ShoupScalar,
    q: u64,
    canonical: bool,
) {
    let two_q = q << 1;
    for (t, b) in top.iter_mut().zip(bot.iter_mut()) {
        let (u, v) = (*t, *b);
        let mut r0 = mul_shoup_lazy_scalar(u + v, n_inv, q);
        let mut r1 = mul_shoup_lazy_scalar(u + two_q - v, s_ninv, q);
        if canonical {
            if r0 >= q {
                r0 -= q;
            }
            if r1 >= q {
                r1 -= q;
            }
        }
        *t = r0;
        *b = r1;
    }
}

fn mul_shoup_slice_scalar(a: &mut [u64], w: ShoupScalar, q: u64) {
    for x in a.iter_mut() {
        let mut r = mul_shoup_lazy_scalar(*x, w, q);
        if r >= q {
            r -= q;
        }
        *x = r;
    }
}

fn reduce_2q_slice_scalar(a: &mut [u64], q: u64) {
    for x in a.iter_mut() {
        if *x >= q {
            *x -= q;
        }
    }
}

fn add_mod_slice_scalar(a: &mut [u64], b: &[u64], q: u64) {
    for (x, &y) in a.iter_mut().zip(b) {
        crate::strict_assert!(
            *x < q && y < q,
            "non-canonical operands to simd::add_mod: a={x} b={y} q={q}"
        );
        let s = *x + y;
        *x = if s >= q { s - q } else { s };
    }
}

fn sub_mod_slice_scalar(a: &mut [u64], b: &[u64], q: u64) {
    for (x, &y) in a.iter_mut().zip(b) {
        crate::strict_assert!(
            *x < q && y < q,
            "non-canonical operands to simd::sub_mod: a={x} b={y} q={q}"
        );
        *x = if *x >= y { *x - y } else { *x + q - y };
    }
}

fn neg_mod_slice_scalar(a: &mut [u64], q: u64) {
    for x in a.iter_mut() {
        crate::strict_assert!(*x < q, "non-canonical operand to simd::neg_mod: a={x} q={q}");
        *x = if *x == 0 { 0 } else { q - *x };
    }
}

fn sub_mul_shoup_slice_scalar(out: &mut [u64], a: &[u64], b: &[u64], w: ShoupScalar, q: u64) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        crate::strict_assert!(
            x < q && y < q,
            "non-canonical operands to simd::sub_mul_shoup: a={x} b={y} q={q}"
        );
        let d = if x >= y { x - y } else { x + q - y };
        let mut r = mul_shoup_lazy_scalar(d, w, q);
        if r >= q {
            r -= q;
        }
        *o = r;
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86_64)
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use super::ShoupScalar;
    use core::arch::x86_64::*;

    const M32: u64 = 0xffff_ffff;
    const SIGN: u64 = 0x8000_0000_0000_0000;

    /// Low 64 bits of the 4 lane-wise products `a * b`.
    #[inline(always)]
    unsafe fn mullo_epu64(a: __m256i, b: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
        _mm256_add_epi64(_mm256_mul_epu32(a, b), _mm256_slli_epi64::<32>(cross))
    }

    /// High 64 bits of the 4 lane-wise products `a * b` (schoolbook on
    /// 32-bit halves, exact).
    #[inline(always)]
    unsafe fn mulhi_epu64(a: __m256i, b: __m256i) -> __m256i {
        let m32 = _mm256_set1_epi64x(M32 as i64);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let lolo = _mm256_mul_epu32(a, b);
        let hilo = _mm256_mul_epu32(a_hi, b);
        let lohi = _mm256_mul_epu32(a, b_hi);
        let hihi = _mm256_mul_epu32(a_hi, b_hi);
        let mid = _mm256_add_epi64(
            _mm256_add_epi64(_mm256_srli_epi64::<32>(lolo), _mm256_and_si256(hilo, m32)),
            _mm256_and_si256(lohi, m32),
        );
        _mm256_add_epi64(
            _mm256_add_epi64(hihi, _mm256_srli_epi64::<32>(hilo)),
            _mm256_add_epi64(_mm256_srli_epi64::<32>(lohi), _mm256_srli_epi64::<32>(mid)),
        )
    }

    /// `v >= bound ? v - bound : v` per unsigned 64-bit lane.
    #[inline(always)]
    unsafe fn cond_sub(v: __m256i, bound: __m256i) -> __m256i {
        let sign = _mm256_set1_epi64x(SIGN as i64);
        // bound > v on sign-biased lanes == unsigned bound > v.
        let lt = _mm256_cmpgt_epi64(_mm256_xor_si256(bound, sign), _mm256_xor_si256(v, sign));
        _mm256_sub_epi64(v, _mm256_andnot_si256(lt, bound))
    }

    /// Lazy Shoup product per lane: result in `[0, 2q)` for any input.
    #[inline(always)]
    unsafe fn shoup_lazy(x: __m256i, wv: __m256i, wq: __m256i, qv: __m256i) -> __m256i {
        let qhat = mulhi_epu64(x, wq);
        _mm256_sub_epi64(mullo_epu64(x, wv), mullo_epu64(qhat, qv))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fwd_bfly(top: &mut [u64], bot: &mut [u64], s: ShoupScalar, q: u64) {
        let n = top.len();
        let wv = _mm256_set1_epi64x(s.value as i64);
        let wq = _mm256_set1_epi64x(s.quotient as i64);
        let qv = _mm256_set1_epi64x(q as i64);
        let two_q = _mm256_set1_epi64x((q << 1) as i64);
        let tp = top.as_mut_ptr();
        let bp = bot.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let u = cond_sub(_mm256_loadu_si256(tp.add(i).cast()), two_q);
            let x = _mm256_loadu_si256(bp.add(i).cast());
            let v = shoup_lazy(x, wv, wq, qv);
            _mm256_storeu_si256(tp.add(i).cast(), _mm256_add_epi64(u, v));
            _mm256_storeu_si256(bp.add(i).cast(), _mm256_sub_epi64(_mm256_add_epi64(u, two_q), v));
            i += 4;
        }
        if i < n {
            super::fwd_bfly_slice_scalar(&mut top[i..], &mut bot[i..], s, q);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn inv_bfly(top: &mut [u64], bot: &mut [u64], s: ShoupScalar, q: u64) {
        let n = top.len();
        let wv = _mm256_set1_epi64x(s.value as i64);
        let wq = _mm256_set1_epi64x(s.quotient as i64);
        let qv = _mm256_set1_epi64x(q as i64);
        let two_q = _mm256_set1_epi64x((q << 1) as i64);
        let tp = top.as_mut_ptr();
        let bp = bot.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let u = _mm256_loadu_si256(tp.add(i).cast());
            let v = _mm256_loadu_si256(bp.add(i).cast());
            let t0 = cond_sub(_mm256_add_epi64(u, v), two_q);
            let t1 = _mm256_sub_epi64(_mm256_add_epi64(u, two_q), v);
            _mm256_storeu_si256(tp.add(i).cast(), t0);
            _mm256_storeu_si256(bp.add(i).cast(), shoup_lazy(t1, wv, wq, qv));
            i += 4;
        }
        if i < n {
            super::inv_bfly_slice_scalar(&mut top[i..], &mut bot[i..], s, q);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn inv_bfly_last(
        top: &mut [u64],
        bot: &mut [u64],
        n_inv: ShoupScalar,
        s_ninv: ShoupScalar,
        q: u64,
        canonical: bool,
    ) {
        let n = top.len();
        let niv = _mm256_set1_epi64x(n_inv.value as i64);
        let niq = _mm256_set1_epi64x(n_inv.quotient as i64);
        let sv = _mm256_set1_epi64x(s_ninv.value as i64);
        let sq = _mm256_set1_epi64x(s_ninv.quotient as i64);
        let qv = _mm256_set1_epi64x(q as i64);
        let two_q = _mm256_set1_epi64x((q << 1) as i64);
        let tp = top.as_mut_ptr();
        let bp = bot.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let u = _mm256_loadu_si256(tp.add(i).cast());
            let v = _mm256_loadu_si256(bp.add(i).cast());
            let mut r0 = shoup_lazy(_mm256_add_epi64(u, v), niv, niq, qv);
            let mut r1 = shoup_lazy(_mm256_sub_epi64(_mm256_add_epi64(u, two_q), v), sv, sq, qv);
            if canonical {
                r0 = cond_sub(r0, qv);
                r1 = cond_sub(r1, qv);
            }
            _mm256_storeu_si256(tp.add(i).cast(), r0);
            _mm256_storeu_si256(bp.add(i).cast(), r1);
            i += 4;
        }
        if i < n {
            super::inv_bfly_last_slice_scalar(
                &mut top[i..],
                &mut bot[i..],
                n_inv,
                s_ninv,
                q,
                canonical,
            );
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_shoup(a: &mut [u64], w: ShoupScalar, q: u64) {
        let n = a.len();
        let wv = _mm256_set1_epi64x(w.value as i64);
        let wq = _mm256_set1_epi64x(w.quotient as i64);
        let qv = _mm256_set1_epi64x(q as i64);
        let p = a.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(p.add(i).cast());
            let r = cond_sub(shoup_lazy(x, wv, wq, qv), qv);
            _mm256_storeu_si256(p.add(i).cast(), r);
            i += 4;
        }
        if i < n {
            super::mul_shoup_slice_scalar(&mut a[i..], w, q);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn reduce_2q(a: &mut [u64], q: u64) {
        let n = a.len();
        let qv = _mm256_set1_epi64x(q as i64);
        let p = a.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(p.add(i).cast());
            _mm256_storeu_si256(p.add(i).cast(), cond_sub(x, qv));
            i += 4;
        }
        if i < n {
            super::reduce_2q_slice_scalar(&mut a[i..], q);
        }
    }

    /// Unsigned `x >= q` mask per lane (for the fused strict checks).
    #[inline(always)]
    unsafe fn ge_mask(x: __m256i, qv: __m256i) -> __m256i {
        let sign = _mm256_set1_epi64x(SIGN as i64);
        let lt = _mm256_cmpgt_epi64(_mm256_xor_si256(qv, sign), _mm256_xor_si256(x, sign));
        // NOT(lt): x >= q.
        _mm256_andnot_si256(lt, _mm256_set1_epi64x(-1))
    }

    /// Whether the strict canonical-form checks should run in this build.
    #[inline(always)]
    fn checks_on() -> bool {
        cfg!(feature = "strict-checks") || cfg!(debug_assertions)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_mod(a: &mut [u64], b: &[u64], q: u64) {
        let n = a.len();
        let qv = _mm256_set1_epi64x(q as i64);
        let ap = a.as_mut_ptr();
        let bp = b.as_ptr();
        let mut bad = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(ap.add(i).cast());
            let y = _mm256_loadu_si256(bp.add(i).cast());
            if checks_on() {
                bad = _mm256_or_si256(bad, _mm256_or_si256(ge_mask(x, qv), ge_mask(y, qv)));
            }
            let s = _mm256_add_epi64(x, y);
            _mm256_storeu_si256(ap.add(i).cast(), cond_sub(s, qv));
            i += 4;
        }
        if checks_on() {
            crate::strict_assert!(
                _mm256_testz_si256(bad, bad) == 1,
                "non-canonical operands to simd::add_mod (vector path), q={q}"
            );
        }
        if i < n {
            super::add_mod_slice_scalar(&mut a[i..], &b[i..], q);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_mod(a: &mut [u64], b: &[u64], q: u64) {
        let n = a.len();
        let qv = _mm256_set1_epi64x(q as i64);
        let ap = a.as_mut_ptr();
        let bp = b.as_ptr();
        let mut bad = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(ap.add(i).cast());
            let y = _mm256_loadu_si256(bp.add(i).cast());
            if checks_on() {
                bad = _mm256_or_si256(bad, _mm256_or_si256(ge_mask(x, qv), ge_mask(y, qv)));
            }
            // x - y + (x < y ? q : 0)  ==  cond_sub(x + q - y, q) for
            // canonical operands; compute the branch-free form directly.
            let d = _mm256_sub_epi64(_mm256_add_epi64(x, qv), y);
            _mm256_storeu_si256(ap.add(i).cast(), cond_sub(d, qv));
            i += 4;
        }
        if checks_on() {
            crate::strict_assert!(
                _mm256_testz_si256(bad, bad) == 1,
                "non-canonical operands to simd::sub_mod (vector path), q={q}"
            );
        }
        if i < n {
            super::sub_mod_slice_scalar(&mut a[i..], &b[i..], q);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn neg_mod(a: &mut [u64], q: u64) {
        let n = a.len();
        let qv = _mm256_set1_epi64x(q as i64);
        let zero = _mm256_setzero_si256();
        let ap = a.as_mut_ptr();
        let mut bad = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(ap.add(i).cast());
            if checks_on() {
                bad = _mm256_or_si256(bad, ge_mask(x, qv));
            }
            let is_zero = _mm256_cmpeq_epi64(x, zero);
            let r = _mm256_andnot_si256(is_zero, _mm256_sub_epi64(qv, x));
            _mm256_storeu_si256(ap.add(i).cast(), r);
            i += 4;
        }
        if checks_on() {
            crate::strict_assert!(
                _mm256_testz_si256(bad, bad) == 1,
                "non-canonical operand to simd::neg_mod (vector path), q={q}"
            );
        }
        if i < n {
            super::neg_mod_slice_scalar(&mut a[i..], q);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_mul_shoup(
        out: &mut [u64],
        a: &[u64],
        b: &[u64],
        w: ShoupScalar,
        q: u64,
    ) {
        let n = out.len();
        let qv = _mm256_set1_epi64x(q as i64);
        let wv = _mm256_set1_epi64x(w.value as i64);
        let wq = _mm256_set1_epi64x(w.quotient as i64);
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut bad = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(ap.add(i).cast());
            let y = _mm256_loadu_si256(bp.add(i).cast());
            if checks_on() {
                bad = _mm256_or_si256(bad, _mm256_or_si256(ge_mask(x, qv), ge_mask(y, qv)));
            }
            let d = cond_sub(_mm256_sub_epi64(_mm256_add_epi64(x, qv), y), qv);
            let r = cond_sub(shoup_lazy(d, wv, wq, qv), qv);
            _mm256_storeu_si256(op.add(i).cast(), r);
            i += 4;
        }
        if checks_on() {
            crate::strict_assert!(
                _mm256_testz_si256(bad, bad) == 1,
                "non-canonical operands to simd::sub_mul_shoup (vector path), q={q}"
            );
        }
        if i < n {
            super::sub_mul_shoup_slice_scalar(&mut out[i..], &a[i..], &b[i..], w, q);
        }
    }
}

// ---------------------------------------------------------------------------
// NEON kernels (aarch64)
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon {
    use super::ShoupScalar;
    use core::arch::aarch64::*;

    /// Low 64 bits of the 2 lane-wise products `a * b`.
    #[inline(always)]
    unsafe fn mullo_u64(a: uint64x2_t, b: uint64x2_t) -> uint64x2_t {
        let a_lo = vmovn_u64(a);
        let a_hi = vshrn_n_u64::<32>(a);
        let b_lo = vmovn_u64(b);
        let b_hi = vshrn_n_u64::<32>(b);
        let cross = vmlal_u32(vmull_u32(a_lo, b_hi), a_hi, b_lo);
        vaddq_u64(vmull_u32(a_lo, b_lo), vshlq_n_u64::<32>(cross))
    }

    /// High 64 bits of the 2 lane-wise products `a * b`.
    #[inline(always)]
    unsafe fn mulhi_u64(a: uint64x2_t, b: uint64x2_t) -> uint64x2_t {
        let m32 = vdupq_n_u64(0xffff_ffff);
        let a_lo = vmovn_u64(a);
        let a_hi = vshrn_n_u64::<32>(a);
        let b_lo = vmovn_u64(b);
        let b_hi = vshrn_n_u64::<32>(b);
        let lolo = vmull_u32(a_lo, b_lo);
        let hilo = vmull_u32(a_hi, b_lo);
        let lohi = vmull_u32(a_lo, b_hi);
        let hihi = vmull_u32(a_hi, b_hi);
        let mid = vaddq_u64(
            vaddq_u64(vshrq_n_u64::<32>(lolo), vandq_u64(hilo, m32)),
            vandq_u64(lohi, m32),
        );
        vaddq_u64(
            vaddq_u64(hihi, vshrq_n_u64::<32>(hilo)),
            vaddq_u64(vshrq_n_u64::<32>(lohi), vshrq_n_u64::<32>(mid)),
        )
    }

    #[inline(always)]
    unsafe fn cond_sub(v: uint64x2_t, bound: uint64x2_t) -> uint64x2_t {
        let ge = vcgeq_u64(v, bound);
        vsubq_u64(v, vandq_u64(ge, bound))
    }

    #[inline(always)]
    unsafe fn shoup_lazy(
        x: uint64x2_t,
        wv: uint64x2_t,
        wq: uint64x2_t,
        qv: uint64x2_t,
    ) -> uint64x2_t {
        let qhat = mulhi_u64(x, wq);
        vsubq_u64(mullo_u64(x, wv), mullo_u64(qhat, qv))
    }

    pub(super) unsafe fn fwd_bfly(top: &mut [u64], bot: &mut [u64], s: ShoupScalar, q: u64) {
        let n = top.len();
        let wv = vdupq_n_u64(s.value);
        let wq = vdupq_n_u64(s.quotient);
        let qv = vdupq_n_u64(q);
        let two_q = vdupq_n_u64(q << 1);
        let tp = top.as_mut_ptr();
        let bp = bot.as_mut_ptr();
        let mut i = 0usize;
        while i + 2 <= n {
            let u = cond_sub(vld1q_u64(tp.add(i)), two_q);
            let v = shoup_lazy(vld1q_u64(bp.add(i)), wv, wq, qv);
            vst1q_u64(tp.add(i), vaddq_u64(u, v));
            vst1q_u64(bp.add(i), vsubq_u64(vaddq_u64(u, two_q), v));
            i += 2;
        }
        if i < n {
            super::fwd_bfly_slice_scalar(&mut top[i..], &mut bot[i..], s, q);
        }
    }

    pub(super) unsafe fn inv_bfly(top: &mut [u64], bot: &mut [u64], s: ShoupScalar, q: u64) {
        let n = top.len();
        let wv = vdupq_n_u64(s.value);
        let wq = vdupq_n_u64(s.quotient);
        let qv = vdupq_n_u64(q);
        let two_q = vdupq_n_u64(q << 1);
        let tp = top.as_mut_ptr();
        let bp = bot.as_mut_ptr();
        let mut i = 0usize;
        while i + 2 <= n {
            let u = vld1q_u64(tp.add(i));
            let v = vld1q_u64(bp.add(i));
            let t0 = cond_sub(vaddq_u64(u, v), two_q);
            let t1 = vsubq_u64(vaddq_u64(u, two_q), v);
            vst1q_u64(tp.add(i), t0);
            vst1q_u64(bp.add(i), shoup_lazy(t1, wv, wq, qv));
            i += 2;
        }
        if i < n {
            super::inv_bfly_slice_scalar(&mut top[i..], &mut bot[i..], s, q);
        }
    }

    pub(super) unsafe fn inv_bfly_last(
        top: &mut [u64],
        bot: &mut [u64],
        n_inv: ShoupScalar,
        s_ninv: ShoupScalar,
        q: u64,
        canonical: bool,
    ) {
        let n = top.len();
        let niv = vdupq_n_u64(n_inv.value);
        let niq = vdupq_n_u64(n_inv.quotient);
        let sv = vdupq_n_u64(s_ninv.value);
        let sq = vdupq_n_u64(s_ninv.quotient);
        let qv = vdupq_n_u64(q);
        let two_q = vdupq_n_u64(q << 1);
        let tp = top.as_mut_ptr();
        let bp = bot.as_mut_ptr();
        let mut i = 0usize;
        while i + 2 <= n {
            let u = vld1q_u64(tp.add(i));
            let v = vld1q_u64(bp.add(i));
            let mut r0 = shoup_lazy(vaddq_u64(u, v), niv, niq, qv);
            let mut r1 = shoup_lazy(vsubq_u64(vaddq_u64(u, two_q), v), sv, sq, qv);
            if canonical {
                r0 = cond_sub(r0, qv);
                r1 = cond_sub(r1, qv);
            }
            vst1q_u64(tp.add(i), r0);
            vst1q_u64(bp.add(i), r1);
            i += 2;
        }
        if i < n {
            super::inv_bfly_last_slice_scalar(
                &mut top[i..],
                &mut bot[i..],
                n_inv,
                s_ninv,
                q,
                canonical,
            );
        }
    }

    pub(super) unsafe fn mul_shoup(a: &mut [u64], w: ShoupScalar, q: u64) {
        let n = a.len();
        let wv = vdupq_n_u64(w.value);
        let wq = vdupq_n_u64(w.quotient);
        let qv = vdupq_n_u64(q);
        let p = a.as_mut_ptr();
        let mut i = 0usize;
        while i + 2 <= n {
            let r = cond_sub(shoup_lazy(vld1q_u64(p.add(i)), wv, wq, qv), qv);
            vst1q_u64(p.add(i), r);
            i += 2;
        }
        if i < n {
            super::mul_shoup_slice_scalar(&mut a[i..], w, q);
        }
    }

    pub(super) unsafe fn reduce_2q(a: &mut [u64], q: u64) {
        let n = a.len();
        let qv = vdupq_n_u64(q);
        let p = a.as_mut_ptr();
        let mut i = 0usize;
        while i + 2 <= n {
            vst1q_u64(p.add(i), cond_sub(vld1q_u64(p.add(i)), qv));
            i += 2;
        }
        if i < n {
            super::reduce_2q_slice_scalar(&mut a[i..], q);
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatching entry points
// ---------------------------------------------------------------------------

/// Forward Harvey butterfly over paired slices: `top[k], bot[k]` in
/// `[0, 4q)` → `[0, 4q)`, with the Shoup twiddle `s`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub(crate) fn fwd_bfly(top: &mut [u64], bot: &mut [u64], s: ShoupScalar, q: u64) {
    debug_assert_eq!(top.len(), bot.len());
    if top.len() >= MIN_VECTOR_LEN {
        match active_backend() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: AVX2 presence verified by `active_backend`.
            Backend::Avx2 => return unsafe { avx2::fwd_bfly(top, bot, s, q) },
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            // SAFETY: NEON is baseline on aarch64.
            Backend::Neon => return unsafe { neon::fwd_bfly(top, bot, s, q) },
            _ => {}
        }
    }
    fwd_bfly_slice_scalar(top, bot, s, q);
}

/// Inverse Harvey butterfly over paired slices: values stay in `[0, 2q)`.
#[inline]
pub(crate) fn inv_bfly(top: &mut [u64], bot: &mut [u64], s: ShoupScalar, q: u64) {
    debug_assert_eq!(top.len(), bot.len());
    if top.len() >= MIN_VECTOR_LEN {
        match active_backend() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: AVX2 presence verified by `active_backend`.
            Backend::Avx2 => return unsafe { avx2::inv_bfly(top, bot, s, q) },
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            // SAFETY: NEON is baseline on aarch64.
            Backend::Neon => return unsafe { neon::inv_bfly(top, bot, s, q) },
            _ => {}
        }
    }
    inv_bfly_slice_scalar(top, bot, s, q);
}

/// Final inverse stage with the `N^{-1}` scaling folded into both halves:
/// `top ← (u+v)·n_inv`, `bot ← (u−v)·s_ninv` (where `s_ninv` already
/// includes `n_inv`). Outputs canonical when `canonical`, else `[0, 2q)`.
#[inline]
pub(crate) fn inv_bfly_last(
    top: &mut [u64],
    bot: &mut [u64],
    n_inv: ShoupScalar,
    s_ninv: ShoupScalar,
    q: u64,
    canonical: bool,
) {
    debug_assert_eq!(top.len(), bot.len());
    if top.len() >= MIN_VECTOR_LEN {
        match active_backend() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: AVX2 presence verified by `active_backend`.
            Backend::Avx2 => {
                return unsafe { avx2::inv_bfly_last(top, bot, n_inv, s_ninv, q, canonical) }
            }
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            // SAFETY: NEON is baseline on aarch64.
            Backend::Neon => {
                return unsafe { neon::inv_bfly_last(top, bot, n_inv, s_ninv, q, canonical) }
            }
            _ => {}
        }
    }
    inv_bfly_last_slice_scalar(top, bot, n_inv, s_ninv, q, canonical);
}

/// Canonical in-place Shoup scaling `a[k] ← a[k]·w mod q` (inputs `< q`...
/// more precisely any `[0, 2q)` value reduces correctly since the lazy
/// product plus one conditional subtraction lands in `[0, q)` only for
/// canonical inputs — callers keep the canonical contract).
#[inline]
pub(crate) fn mul_shoup_slice(a: &mut [u64], w: ShoupScalar, q: u64) {
    if a.len() >= MIN_VECTOR_LEN {
        match active_backend() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: AVX2 presence verified by `active_backend`.
            Backend::Avx2 => return unsafe { avx2::mul_shoup(a, w, q) },
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            // SAFETY: NEON is baseline on aarch64.
            Backend::Neon => return unsafe { neon::mul_shoup(a, w, q) },
            _ => {}
        }
    }
    mul_shoup_slice_scalar(a, w, q);
}

/// Canonicalizes a `[0, 2q)` slice with one conditional subtraction per
/// element.
#[inline]
pub(crate) fn reduce_2q_slice(a: &mut [u64], q: u64) {
    if a.len() >= MIN_VECTOR_LEN {
        match active_backend() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: AVX2 presence verified by `active_backend`.
            Backend::Avx2 => return unsafe { avx2::reduce_2q(a, q) },
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            // SAFETY: NEON is baseline on aarch64.
            Backend::Neon => return unsafe { neon::reduce_2q(a, q) },
            _ => {}
        }
    }
    reduce_2q_slice_scalar(a, q);
}

/// Element-wise canonical modular addition `a[k] ← a[k] + b[k] mod q`.
/// Keeps the `strict-checks` canonical-operand contract (the vector path
/// accumulates a violation mask and asserts once per slice).
#[inline]
pub(crate) fn add_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
    debug_assert_eq!(a.len(), b.len());
    if a.len() >= MIN_VECTOR_LEN {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if active_backend() == Backend::Avx2 {
            // SAFETY: AVX2 presence verified by `active_backend`.
            return unsafe { avx2::add_mod(a, b, q) };
        }
    }
    add_mod_slice_scalar(a, b, q);
}

/// Element-wise canonical modular subtraction `a[k] ← a[k] - b[k] mod q`.
#[inline]
pub(crate) fn sub_mod_slice(a: &mut [u64], b: &[u64], q: u64) {
    debug_assert_eq!(a.len(), b.len());
    if a.len() >= MIN_VECTOR_LEN {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if active_backend() == Backend::Avx2 {
            // SAFETY: AVX2 presence verified by `active_backend`.
            return unsafe { avx2::sub_mod(a, b, q) };
        }
    }
    sub_mod_slice_scalar(a, b, q);
}

/// Element-wise canonical modular negation `a[k] ← -a[k] mod q`.
#[inline]
pub(crate) fn neg_mod_slice(a: &mut [u64], q: u64) {
    if a.len() >= MIN_VECTOR_LEN {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if active_backend() == Backend::Avx2 {
            // SAFETY: AVX2 presence verified by `active_backend`.
            return unsafe { avx2::neg_mod(a, q) };
        }
    }
    neg_mod_slice_scalar(a, q);
}

/// Fused `out[k] ← (a[k] - b[k]) · w mod q` — the Moddown inner loop.
#[inline]
pub(crate) fn sub_mul_shoup_slice(out: &mut [u64], a: &[u64], b: &[u64], w: ShoupScalar, q: u64) {
    debug_assert!(out.len() == a.len() && a.len() == b.len());
    if out.len() >= MIN_VECTOR_LEN {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if active_backend() == Backend::Avx2 {
            // SAFETY: AVX2 presence verified by `active_backend`.
            return unsafe { avx2::sub_mul_shoup(out, a, b, w, q) };
        }
    }
    sub_mul_shoup_slice_scalar(out, a, b, w, q);
}

/// Element-wise Barrett modular multiplication `a[k] ← a[k]·b[k] mod q`.
///
/// Intentionally scalar on every backend: the Barrett reduction needs the
/// full 128-bit ratio product, which costs more `mul_epu32` emulation ops
/// per lane than the scalar `mulx` chain it would replace (documented in
/// DESIGN.md §14). Accepts lazy `[0, 2q)` operands — the 128-bit product
/// of two sub-`2q` values stays below `2^124`, well inside
/// [`Modulus::reduce_u128`]'s domain — and always returns canonical values.
#[inline]
pub(crate) fn mul_mod_slice(a: &mut [u64], b: &[u64], m: &Modulus) {
    debug_assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x = m.reduce_u128(*x as u128 * y as u128);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ntt_primes;

    fn modulus(bits: u32) -> Modulus {
        Modulus::new(generate_ntt_primes(bits, 1 << 10, 1).unwrap()[0]).unwrap()
    }

    /// Runs `f` once with SIMD allowed and once forced-scalar, asserting
    /// both produce identical outputs on identical inputs.
    fn differential(mut f: impl FnMut() -> Vec<u64>) {
        set_force_scalar(false);
        let fast = f();
        set_force_scalar(true);
        let slow = f();
        set_force_scalar(false);
        assert_eq!(fast, slow, "SIMD and scalar paths diverged");
    }

    #[test]
    fn backend_name_is_stable() {
        let b = active_backend();
        assert!(["scalar", "avx2", "neon"].contains(&b.name()));
        set_force_scalar(true);
        assert_eq!(active_backend(), Backend::Scalar);
        set_force_scalar(false);
    }

    #[test]
    fn fwd_bfly_matches_scalar_and_keeps_4q_bound() {
        for bits in [36u32, 60] {
            let m = modulus(bits);
            let q = m.value();
            let s = m.shoup(q - 3);
            let n = 37; // odd length exercises the scalar tail
            let mk = || {
                let mut top: Vec<u64> =
                    (0..n as u64).map(|i| i.wrapping_mul(0x9e37) % (4 * q)).collect();
                let mut bot: Vec<u64> =
                    (0..n as u64).map(|i| i.wrapping_mul(0x51ed) % (4 * q)).collect();
                fwd_bfly(&mut top, &mut bot, s, q);
                top.extend_from_slice(&bot);
                top
            };
            differential(mk);
            let out = mk();
            assert!(out.iter().all(|&v| v < 4 * q), "4q bound violated, bits={bits}");
        }
    }

    #[test]
    fn inv_bfly_matches_scalar_and_keeps_2q_bound() {
        let m = modulus(60);
        let q = m.value();
        let s = m.shoup(12345);
        let n = 21;
        let mk = || {
            let mut top: Vec<u64> = (0..n as u64).map(|i| (i * 977) % (2 * q)).collect();
            let mut bot: Vec<u64> = (0..n as u64).map(|i| (i * 3331) % (2 * q)).collect();
            inv_bfly(&mut top, &mut bot, s, q);
            top.extend_from_slice(&bot);
            top
        };
        differential(mk);
        assert!(mk().iter().all(|&v| v < 2 * q));
    }

    #[test]
    fn elementwise_kernels_match_modulus_ops() {
        let m = modulus(60);
        let q = m.value();
        let n = 45;
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 0xdead_beef) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 0xcafe) % q).collect();

        let mut add = a.clone();
        add_mod_slice(&mut add, &b, q);
        let mut sub = a.clone();
        sub_mod_slice(&mut sub, &b, q);
        let mut neg = a.clone();
        neg_mod_slice(&mut neg, q);
        let w = m.shoup(987_654_321 % q);
        let mut sh = a.clone();
        mul_shoup_slice(&mut sh, w, q);
        let mut fused = vec![0u64; n];
        sub_mul_shoup_slice(&mut fused, &a, &b, w, q);

        for i in 0..n {
            assert_eq!(add[i], m.add(a[i], b[i]));
            assert_eq!(sub[i], m.sub(a[i], b[i]));
            assert_eq!(neg[i], m.neg(a[i]));
            assert_eq!(sh[i], m.mul_shoup(a[i], w));
            assert_eq!(fused[i], m.mul_shoup(m.sub(a[i], b[i]), w));
        }

        differential(|| {
            let mut v = a.clone();
            add_mod_slice(&mut v, &b, q);
            sub_mod_slice(&mut v, &b, q);
            mul_shoup_slice(&mut v, w, q);
            neg_mod_slice(&mut v, q);
            v
        });
    }

    #[test]
    fn reduce_2q_canonicalizes() {
        let m = modulus(36);
        let q = m.value();
        let mut v: Vec<u64> = (0..33).map(|i| (i * 0x1234_5678) % (2 * q)).collect();
        let expect: Vec<u64> = v.iter().map(|&x| x % q).collect();
        reduce_2q_slice(&mut v, q);
        assert_eq!(v, expect);
    }

    #[test]
    #[cfg(feature = "strict-checks")]
    fn vector_add_rejects_non_canonical() {
        let m = modulus(36);
        let q = m.value();
        let res = std::panic::catch_unwind(|| {
            let mut a = vec![q; 32]; // non-canonical on the vector path
            let b = vec![1u64; 32];
            add_mod_slice(&mut a, &b, q);
        });
        assert!(res.is_err(), "strict check must fire on the vector path too");
    }
}
