//! Residue number system (RNS) polynomials and fast base conversion.
//!
//! Arithmetic FHE splits a ciphertext modulus `Q = ∏ q_i` of hundreds or
//! thousands of bits into parallel word-sized channels (paper §2.2). The
//! three RNS primitives Alchemist accelerates all live here:
//!
//! * [`RnsContext::bconv`] — fast basis conversion, paper Eq. (1):
//!   `[x]_{p_j} = (Σ_i [[x]_{q_i}·q̂_i^{-1}]_{q_i} · q̂_i) mod p_j`,
//! * [`RnsContext::modup`] — Eq. (2), extending `[x]_Q` to `[x]_{Q·P}`,
//! * [`RnsContext::moddown`] — Eq. (3), scaling back down by `P^{-1}`.
//!
//! The fast conversion is *approximate*: it returns `x + u·Q (mod p_j)` for
//! some small `u ∈ [0, L)`. That slack is standard in RNS-CKKS (absorbed by
//! noise) and is asserted exactly in the tests via [`crate::UBig`]
//! reconstruction.

use crate::par::WorkClass;
use crate::poly::Domain;
use crate::{par, simd, MathError, Modulus, NttTable, Poly, Scratch, UBig};

/// Work estimate (element-operations) of one length-`n` NTT channel.
fn ntt_work(n: usize) -> u64 {
    (n as u64).saturating_mul(n.next_power_of_two().trailing_zeros().max(1) as u64)
}

/// An ordered set of word-sized prime moduli forming an RNS basis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsBasis {
    moduli: Vec<Modulus>,
}

impl RnsBasis {
    /// Creates a basis from distinct moduli.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if the list is empty or
    /// contains duplicates (CRT requires pairwise-coprime moduli; distinct
    /// primes guarantee it).
    pub fn new(moduli: Vec<Modulus>) -> Result<Self, MathError> {
        if moduli.is_empty() {
            return Err(MathError::InvalidParameter { detail: "empty RNS basis".into() });
        }
        let mut values: Vec<u64> = moduli.iter().map(|m| m.value()).collect();
        values.sort_unstable();
        values.dedup();
        if values.len() != moduli.len() {
            return Err(MathError::InvalidParameter {
                detail: "RNS basis contains duplicate moduli".into(),
            });
        }
        Ok(RnsBasis { moduli })
    }

    /// The moduli in order.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// Number of channels.
    #[inline]
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// `true` if the basis has no channels (never true for a constructed
    /// basis; present for completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// The exact product `∏ q_i` as a big integer.
    pub fn product(&self) -> UBig {
        UBig::product_of(self.moduli.iter().map(|m| m.value()))
    }
}

/// Precomputed tables for one RNS basis at one polynomial degree: per-channel
/// NTT tables plus base-conversion scratch constants.
#[derive(Debug, Clone)]
pub struct RnsContext {
    n: usize,
    basis: RnsBasis,
    tables: Vec<NttTable>,
}

impl RnsContext {
    /// Builds a context for polynomials of degree `n` over `basis`.
    ///
    /// # Errors
    ///
    /// Propagates NTT table construction failures (e.g. a modulus without a
    /// `2n`-th root of unity).
    pub fn new(n: usize, basis: RnsBasis) -> Result<Self, MathError> {
        let tables =
            basis.moduli().iter().map(|&m| NttTable::new(m, n)).collect::<Result<Vec<_>, _>>()?;
        Ok(RnsContext { n, basis, tables })
    }

    /// Polynomial degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The underlying basis.
    #[inline]
    pub fn basis(&self) -> &RnsBasis {
        &self.basis
    }

    /// All moduli.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        self.basis.moduli()
    }

    /// NTT table for channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn table(&self, i: usize) -> &NttTable {
        &self.tables[i]
    }

    /// All NTT tables, aligned with [`RnsContext::moduli`].
    #[inline]
    pub fn tables(&self) -> &[NttTable] {
        &self.tables
    }

    /// Builds a fast base-conversion plan from the channels `src` to the
    /// channels `dst` (both index into this context's basis).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if `src` is empty or any
    /// index is out of range or `src` and `dst` overlap.
    pub fn bconv(&self, src: &[usize], dst: &[usize]) -> Result<BconvPlan, MathError> {
        BconvPlan::new(self, src, dst)
    }

    /// Modup (paper Eq. 2): given residues on `src` channels, produce
    /// residues on `dst` channels via fast base conversion. `poly` must be in
    /// coefficient domain.
    ///
    /// This is a convenience wrapper over [`BconvPlan::apply`]; hot paths
    /// should build the plan once.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RnsContext::bconv`] plus domain mismatch.
    pub fn modup(
        &self,
        poly_channels: &[&[u64]],
        src: &[usize],
        dst: &[usize],
    ) -> Result<Vec<Vec<u64>>, MathError> {
        let plan = self.bconv(src, dst)?;
        plan.apply(poly_channels)
    }

    /// Allocation-free [`RnsContext::modup`]: writes the converted channels
    /// into `out` (one buffer per destination channel, resized in place so
    /// steady-state reuse allocates nothing).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RnsContext::bconv`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dst.len()`.
    pub fn modup_into(
        &self,
        poly_channels: &[&[u64]],
        src: &[usize],
        dst: &[usize],
        out: &mut [Vec<u64>],
    ) -> Result<(), MathError> {
        let _t = telemetry::Timer::enter("math.modup");
        let plan = self.bconv(src, dst)?;
        plan.apply_into(poly_channels, out)
    }

    /// Moddown (paper Eq. 3): given residues of `x` on `Q ∪ P` (indices
    /// `q_idx` then `p_idx`), return `⌊x/P⌉`-style scaled residues on `Q`:
    /// `[x]_{q_i} ← ([x]_{q_i} − Bconv([x]_P, q_i)) · P^{-1} mod q_i`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RnsContext::bconv`].
    pub fn moddown(
        &self,
        q_channels: &[&[u64]],
        p_channels: &[&[u64]],
        q_idx: &[usize],
        p_idx: &[usize],
    ) -> Result<Vec<Vec<u64>>, MathError> {
        let mut out = vec![Vec::new(); q_idx.len()];
        self.moddown_into(q_channels, p_channels, q_idx, p_idx, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`RnsContext::moddown`]: writes the scaled residues
    /// into `out` (one buffer per `q_idx` channel). Destination channels are
    /// processed in parallel when the work clears the [`par`] threshold.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RnsContext::bconv`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != q_idx.len()`.
    pub fn moddown_into(
        &self,
        q_channels: &[&[u64]],
        p_channels: &[&[u64]],
        q_idx: &[usize],
        p_idx: &[usize],
        out: &mut [Vec<u64>],
    ) -> Result<(), MathError> {
        let _t = telemetry::Timer::enter("math.moddown");
        if q_channels.len() != q_idx.len() || p_channels.len() != p_idx.len() {
            return Err(MathError::InvalidParameter {
                detail: "moddown channel/index count mismatch".into(),
            });
        }
        assert_eq!(out.len(), q_idx.len(), "moddown output channel count mismatch");
        let plan = self.bconv(p_idx, q_idx)?;
        let n = p_channels.first().map_or(0, |c| c.len());
        // P^{-1} mod q_i per destination channel, precomputed so the
        // parallel loop below is infallible.
        let mut p_invs = Vec::with_capacity(q_idx.len());
        for &qi in q_idx {
            let m = self.moduli()[qi];
            let mut p_mod = 1u64;
            for &pj in p_idx {
                p_mod = m.mul(p_mod, self.moduli()[pj].value() % m.value());
            }
            p_invs.push(m.shoup(m.inv(p_mod)?));
        }
        Scratch::with_thread_local(|scratch| {
            let mut converted: Vec<Vec<u64>> = (0..q_idx.len()).map(|_| scratch.take(n)).collect();
            plan.apply_into(p_channels, &mut converted)?;
            let moduli = self.moduli();
            par::par_iter_mut_in(
                WorkClass::Bconv,
                out,
                (n * (p_idx.len() + 2)) as u64,
                |k, channel| {
                    let m = moduli[q_idx[k]];
                    let p_inv = p_invs[k];
                    channel.clear();
                    channel.resize(n, 0);
                    simd::sub_mul_shoup_slice(
                        channel,
                        q_channels[k],
                        &converted[k],
                        p_inv,
                        m.value(),
                    );
                },
            )?;
            for buf in converted {
                scratch.put(buf);
            }
            Ok(())
        })
    }
}

/// A precomputed fast base-conversion (Bconv, paper Eq. 1) between two
/// disjoint channel subsets of an [`RnsContext`].
#[derive(Debug, Clone)]
pub struct BconvPlan {
    src_moduli: Vec<Modulus>,
    dst_moduli: Vec<Modulus>,
    /// `(Q/q_i)^{-1} mod q_i` in Shoup form for the per-channel pre-scale.
    qhat_inv: Vec<crate::modulus::ShoupScalar>,
    /// `qhat_dst[j][i] = (Q/q_i) mod p_j`.
    qhat_dst: Vec<Vec<u64>>,
}

impl BconvPlan {
    fn new(ctx: &RnsContext, src: &[usize], dst: &[usize]) -> Result<Self, MathError> {
        if src.is_empty() {
            return Err(MathError::InvalidParameter { detail: "empty Bconv source".into() });
        }
        let nmod = ctx.moduli().len();
        if src.iter().chain(dst).any(|&i| i >= nmod) {
            return Err(MathError::InvalidParameter {
                detail: "Bconv channel index out of range".into(),
            });
        }
        if src.iter().any(|i| dst.contains(i)) {
            return Err(MathError::InvalidParameter {
                detail: "Bconv source and destination overlap".into(),
            });
        }
        let src_moduli: Vec<Modulus> = src.iter().map(|&i| ctx.moduli()[i]).collect();
        let dst_moduli: Vec<Modulus> = dst.iter().map(|&i| ctx.moduli()[i]).collect();

        let mut qhat_inv = Vec::with_capacity(src_moduli.len());
        for (i, &qi) in src_moduli.iter().enumerate() {
            let mut prod = 1u64;
            for (k, &qk) in src_moduli.iter().enumerate() {
                if k != i {
                    prod = qi.mul(prod, qk.value() % qi.value());
                }
            }
            qhat_inv.push(qi.shoup(qi.inv(prod)?));
        }
        let mut qhat_dst = Vec::with_capacity(dst_moduli.len());
        for &pj in &dst_moduli {
            let mut row = Vec::with_capacity(src_moduli.len());
            for (i, _) in src_moduli.iter().enumerate() {
                let mut prod = 1u64;
                for (k, &qk) in src_moduli.iter().enumerate() {
                    if k != i {
                        prod = pj.mul(prod, qk.value() % pj.value());
                    }
                }
                row.push(prod);
            }
            qhat_dst.push(row);
        }
        Ok(BconvPlan { src_moduli, dst_moduli, qhat_inv, qhat_dst })
    }

    /// Source moduli of the plan.
    #[inline]
    pub fn src_moduli(&self) -> &[Modulus] {
        &self.src_moduli
    }

    /// Destination moduli of the plan.
    #[inline]
    pub fn dst_moduli(&self) -> &[Modulus] {
        &self.dst_moduli
    }

    /// `(Q/q_i)^{-1} mod q_i` per source channel (Shoup form) — exposed so
    /// the Meta-OP layer can lower the conversion without re-deriving
    /// constants.
    #[inline]
    pub fn qhat_inv(&self) -> &[crate::modulus::ShoupScalar] {
        &self.qhat_inv
    }

    /// `(Q/q_i) mod p_j` indexed `[dst][src]`.
    #[inline]
    pub fn qhat_dst(&self) -> &[Vec<u64>] {
        &self.qhat_dst
    }

    /// Applies the conversion to coefficient-domain channel data.
    ///
    /// The inner loop is exactly the Meta-OP pattern `(M_j A_j)_L R_j`:
    /// `L` products accumulated lazily in a 128-bit register, then a single
    /// Barrett reduction per destination coefficient (paper Table 3).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::WorkerPanic`] if a parallel worker chunk
    /// panicked (the panic is contained, the process stays healthy).
    ///
    /// # Panics
    ///
    /// Panics if `channels.len()` differs from the plan's source count or
    /// the channels have unequal lengths.
    pub fn apply(&self, channels: &[&[u64]]) -> Result<Vec<Vec<u64>>, MathError> {
        let mut out = vec![Vec::new(); self.dst_moduli.len()];
        self.apply_into(channels, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`BconvPlan::apply`]: writes one converted channel
    /// per destination modulus into `out`, resizing each buffer in place.
    /// The per-source pre-scale and the per-destination dot products both
    /// run channel-parallel when the work clears the [`par`] threshold;
    /// intermediate buffers come from the thread-local [`Scratch`] pool, so
    /// a warmed-up caller thread allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::WorkerPanic`] if a parallel worker chunk
    /// panicked; `out` is poisoned in that case.
    ///
    /// # Panics
    ///
    /// Panics if `channels.len()` differs from the plan's source count, the
    /// channels have unequal lengths, or `out.len()` differs from the
    /// plan's destination count.
    pub fn apply_into(&self, channels: &[&[u64]], out: &mut [Vec<u64>]) -> Result<(), MathError> {
        // Histogram-only latency probe: one atomic load when telemetry is
        // not installed, per-call p50/p99 when it is (no span events — this
        // runs thousands of times per workload).
        let _t = telemetry::Timer::enter("math.bconv.apply");
        assert_eq!(channels.len(), self.src_moduli.len(), "source channel count mismatch");
        assert_eq!(out.len(), self.dst_moduli.len(), "destination channel count mismatch");
        let n = channels.first().map_or(0, |c| c.len());
        assert!(channels.iter().all(|c| c.len() == n), "ragged source channels");
        Scratch::with_thread_local(|scratch| {
            // Step 1 (per source channel): y_i = x_i * qhat_inv_i mod q_i.
            let mut scaled: Vec<Vec<u64>> = (0..channels.len()).map(|_| scratch.take(n)).collect();
            par::par_iter_mut_in(WorkClass::Elementwise, &mut scaled, n as u64, |i, buf| {
                let m = self.src_moduli[i];
                let s = self.qhat_inv[i];
                buf.copy_from_slice(channels[i]);
                simd::mul_shoup_slice(buf, s, m.value());
            })?;
            // Step 2 (per destination channel): lazy-accumulated dot
            // product — the Meta-OP pattern `(M_j A_j)_L R_j`, one Barrett
            // reduction per destination coefficient (paper Table 3).
            let l = channels.len() as u64;
            par::par_iter_mut_in(
                WorkClass::Bconv,
                out,
                (n as u64).saturating_mul(l),
                |j, channel| {
                    let pj = self.dst_moduli[j];
                    let weights = &self.qhat_dst[j];
                    channel.clear();
                    channel.resize(n, 0);
                    for (s, x) in channel.iter_mut().enumerate() {
                        let mut acc: u128 = 0;
                        for (i, scaled_ch) in scaled.iter().enumerate() {
                            acc += scaled_ch[s] as u128 * weights[i] as u128;
                        }
                        *x = pj.reduce_u128(acc);
                    }
                },
            )?;
            for buf in scaled {
                scratch.put(buf);
            }
            Ok(())
        })
    }
}

/// A polynomial represented in RNS form: one [`Poly`] per channel, all of
/// the same degree and domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    channels: Vec<Poly>,
}

impl RnsPoly {
    /// The zero polynomial over the given moduli.
    pub fn zero(n: usize, moduli: &[Modulus]) -> Self {
        RnsPoly { channels: moduli.iter().map(|&m| Poly::zero(n, m)).collect() }
    }

    /// Wraps per-channel polynomials.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] if channels disagree on degree
    /// or domain, or the list is empty.
    pub fn from_channels(channels: Vec<Poly>) -> Result<Self, MathError> {
        let first = channels
            .first()
            .ok_or(MathError::BasisMismatch { detail: "RnsPoly requires at least one channel" })?;
        let (n, domain) = (first.n(), first.domain());
        if channels.iter().any(|c| c.n() != n || c.domain() != domain) {
            return Err(MathError::BasisMismatch {
                detail: "RnsPoly channels disagree on degree or domain",
            });
        }
        Ok(RnsPoly { channels })
    }

    /// Lifts a signed integer polynomial into every channel.
    pub fn from_signed(coeffs: &[i64], n: usize, moduli: &[Modulus]) -> Self {
        let channels = moduli
            .iter()
            .map(|&m| {
                let mut v = vec![0u64; n];
                for (i, &c) in coeffs.iter().enumerate() {
                    v[i] = m.from_i64(c);
                }
                Poly::from_coeffs(v, m).expect("from_i64 yields canonical residues")
            })
            .collect();
        RnsPoly { channels }
    }

    /// Polynomial degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.channels[0].n()
    }

    /// Number of RNS channels.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Current domain (shared by all channels).
    #[inline]
    pub fn domain(&self) -> Domain {
        self.channels[0].domain()
    }

    /// The moduli of each channel, in order.
    pub fn moduli(&self) -> Vec<Modulus> {
        self.channels.iter().map(|c| c.modulus()).collect()
    }

    /// Channel accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn channel(&self, i: usize) -> &Poly {
        &self.channels[i]
    }

    /// All channels.
    #[inline]
    pub fn channels(&self) -> &[Poly] {
        &self.channels
    }

    /// Mutable channels (expert use: invariants are the caller's problem).
    #[inline]
    pub fn channels_mut(&mut self) -> &mut [Poly] {
        &mut self.channels
    }

    /// Converts all channels to NTT domain using the aligned tables.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::WorkerPanic`] if a parallel worker chunk
    /// panicked; the polynomial is poisoned (some channels converted, some
    /// not) and must be discarded.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is shorter than the channel list or misaligned
    /// (wrong modulus).
    pub fn to_ntt(&mut self, tables: &[NttTable]) -> Result<(), MathError> {
        let _t = telemetry::Timer::enter("math.rns.ntt_fwd");
        assert!(tables.len() >= self.channels.len(), "missing NTT tables");
        for (c, t) in self.channels.iter().zip(tables) {
            assert_eq!(c.modulus(), t.modulus(), "misaligned NTT tables");
        }
        let work = ntt_work(self.n());
        par::par_iter_mut_in(WorkClass::Ntt, &mut self.channels, work, |i, c| {
            c.to_ntt(&tables[i]);
        })?;
        Ok(())
    }

    /// Converts all channels to coefficient domain.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::WorkerPanic`] if a parallel worker chunk
    /// panicked; the polynomial is poisoned and must be discarded.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is shorter than the channel list or misaligned.
    pub fn to_coeff(&mut self, tables: &[NttTable]) -> Result<(), MathError> {
        let _t = telemetry::Timer::enter("math.rns.ntt_inv");
        assert!(tables.len() >= self.channels.len(), "missing NTT tables");
        for (c, t) in self.channels.iter().zip(tables) {
            assert_eq!(c.modulus(), t.modulus(), "misaligned NTT tables");
        }
        let work = ntt_work(self.n());
        par::par_iter_mut_in(WorkClass::Ntt, &mut self.channels, work, |i, c| {
            c.to_coeff(&tables[i]);
        })?;
        Ok(())
    }

    /// Channel-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] on structural disagreement.
    pub fn add(&self, other: &RnsPoly) -> Result<RnsPoly, MathError> {
        let mut out = self.clone();
        out.add_assign(other)?;
        Ok(out)
    }

    /// In-place channel-wise sum (`self += other`), channel-parallel above
    /// the [`par`] threshold. The allocation-free form of [`RnsPoly::add`].
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] on structural disagreement
    /// (`self` is unchanged on error).
    pub fn add_assign(&mut self, other: &RnsPoly) -> Result<(), MathError> {
        self.check_zip(other)?;
        let n = self.n() as u64;
        let others = &other.channels;
        par::par_iter_mut_in(WorkClass::Elementwise, &mut self.channels, n, |i, c| {
            let q = c.modulus().value();
            simd::add_mod_slice(c.coeffs_mut(), others[i].coeffs(), q);
        })?;
        Ok(())
    }

    /// Channel-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] on structural disagreement.
    pub fn sub(&self, other: &RnsPoly) -> Result<RnsPoly, MathError> {
        let mut out = self.clone();
        out.sub_assign(other)?;
        Ok(out)
    }

    /// In-place channel-wise difference (`self -= other`), channel-parallel
    /// above the [`par`] threshold.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] on structural disagreement
    /// (`self` is unchanged on error).
    pub fn sub_assign(&mut self, other: &RnsPoly) -> Result<(), MathError> {
        self.check_zip(other)?;
        let n = self.n() as u64;
        let others = &other.channels;
        par::par_iter_mut_in(WorkClass::Elementwise, &mut self.channels, n, |i, c| {
            let q = c.modulus().value();
            simd::sub_mod_slice(c.coeffs_mut(), others[i].coeffs(), q);
        })?;
        Ok(())
    }

    /// Channel-wise negation.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::WorkerPanic`] if a parallel worker chunk
    /// panicked.
    pub fn neg(&self) -> Result<RnsPoly, MathError> {
        let mut out = self.clone();
        out.neg_assign()?;
        Ok(out)
    }

    /// In-place channel-wise negation.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::WorkerPanic`] if a parallel worker chunk
    /// panicked (`self` is poisoned in that case).
    pub fn neg_assign(&mut self) -> Result<(), MathError> {
        let n = self.n() as u64;
        par::par_iter_mut_in(WorkClass::Elementwise, &mut self.channels, n, |_, c| {
            let q = c.modulus().value();
            simd::neg_mod_slice(c.coeffs_mut(), q);
        })?;
        Ok(())
    }

    /// Point-wise product; both operands must already be in NTT domain.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] if either operand is in
    /// coefficient domain or structures disagree.
    pub fn mul_pointwise(&self, other: &RnsPoly) -> Result<RnsPoly, MathError> {
        let mut out = self.clone();
        out.mul_pointwise_assign(other)?;
        Ok(out)
    }

    /// In-place point-wise product (`self *= other`), channel-parallel
    /// above the [`par`] threshold. Both operands must be in NTT domain.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BasisMismatch`] if either operand is in
    /// coefficient domain or structures disagree (`self` is unchanged on
    /// error).
    pub fn mul_pointwise_assign(&mut self, other: &RnsPoly) -> Result<(), MathError> {
        if self.domain() != Domain::Ntt || other.domain() != Domain::Ntt {
            return Err(MathError::BasisMismatch { detail: "mul_pointwise requires NTT domain" });
        }
        self.check_zip(other)?;
        let n = self.n() as u64;
        let others = &other.channels;
        par::par_iter_mut_in(WorkClass::Elementwise, &mut self.channels, n, |i, c| {
            let m = c.modulus();
            simd::mul_mod_slice(c.coeffs_mut(), others[i].coeffs(), &m);
        })?;
        Ok(())
    }

    /// Applies the Galois automorphism `X ↦ X^g` channel-wise (coefficient
    /// domain), channel-parallel above the [`par`] threshold.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Poly::automorphism`].
    pub fn automorphism(&self, g: usize) -> Result<RnsPoly, MathError> {
        if self.domain() != Domain::Coefficient {
            return Err(MathError::BasisMismatch {
                detail: "automorphism requires coefficient domain",
            });
        }
        if g.is_multiple_of(2) {
            return Err(MathError::InvalidParameter {
                detail: format!("automorphism exponent {g} must be odd"),
            });
        }
        let channels =
            par::par_map_in(WorkClass::Elementwise, &self.channels, self.n() as u64, |_, c| {
                c.automorphism(g).expect("validated: odd exponent, coefficient domain")
            })?;
        Ok(RnsPoly { channels })
    }

    /// Drops the last channel (used by CKKS rescaling after the scaled
    /// subtraction has been folded in).
    ///
    /// # Panics
    ///
    /// Panics if only one channel remains.
    pub fn drop_last_channel(&mut self) {
        assert!(self.channels.len() > 1, "cannot drop the only RNS channel");
        self.channels.pop();
    }

    /// Exact CRT reconstruction of the coefficient at `idx` as a big
    /// integer in `[0, Q)`. Coefficient domain only; verification paths.
    ///
    /// # Panics
    ///
    /// Panics if called in NTT domain or `idx` is out of range.
    pub fn crt_coefficient(&self, idx: usize) -> UBig {
        assert_eq!(self.domain(), Domain::Coefficient, "CRT needs coefficient domain");
        let moduli = self.moduli();
        let q = UBig::product_of(moduli.iter().map(|m| m.value()));
        let mut acc = UBig::zero();
        for (i, ch) in self.channels.iter().enumerate() {
            let mi = moduli[i];
            // Qhat_i = Q / q_i (exact), y_i = x_i * Qhat_i^{-1} mod q_i.
            let (qhat, rem) = q.divrem_u64(mi.value());
            crate::strict_assert_eq!(
                rem,
                0,
                "CRT basis corrupt: Q not divisible by channel modulus {}",
                mi.value()
            );
            let qhat_mod = qhat.rem_u64(mi.value());
            let inv = mi.inv(qhat_mod).expect("prime moduli");
            let y = mi.mul(ch.coeffs()[idx], inv);
            acc = acc.add(&qhat.mul_u64(y));
        }
        acc.rem_big(&q)
    }

    /// Validates that `other` has the same channel structure (count, per-
    /// channel modulus, degree, and domain) so zip kernels are infallible.
    fn check_zip(&self, other: &RnsPoly) -> Result<(), MathError> {
        if self.channels.len() != other.channels.len() {
            return Err(MathError::BasisMismatch { detail: "channel counts differ" });
        }
        for (a, b) in self.channels.iter().zip(&other.channels) {
            if a.modulus() != b.modulus() {
                return Err(MathError::BasisMismatch { detail: "moduli differ" });
            }
            if a.n() != b.n() {
                return Err(MathError::BasisMismatch { detail: "lengths differ" });
            }
            if a.domain() != b.domain() {
                return Err(MathError::BasisMismatch { detail: "domains differ" });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ntt_primes;

    fn context(n: usize, channels: usize) -> RnsContext {
        let primes = generate_ntt_primes(30, n, channels).unwrap();
        let moduli = primes.into_iter().map(|q| Modulus::new(q).unwrap()).collect();
        RnsContext::new(n, RnsBasis::new(moduli).unwrap()).unwrap()
    }

    #[test]
    fn basis_rejects_duplicates_and_empty() {
        let m = Modulus::new(65537).unwrap();
        assert!(RnsBasis::new(vec![]).is_err());
        assert!(RnsBasis::new(vec![m, m]).is_err());
    }

    #[test]
    fn crt_reconstruction_round_trip() {
        let ctx = context(16, 3);
        let value: i64 = 123_456_789;
        let poly = RnsPoly::from_signed(&[value], 16, ctx.moduli());
        assert_eq!(poly.crt_coefficient(0), UBig::from_u64(value as u64));
        // Negative values map to Q - |v|.
        let neg = RnsPoly::from_signed(&[-5], 16, ctx.moduli());
        let q = ctx.basis().product();
        assert_eq!(neg.crt_coefficient(0), q.sub(&UBig::from_u64(5)));
    }

    #[test]
    fn bconv_is_exact_up_to_multiples_of_q() {
        let ctx = context(16, 5);
        let src = [0usize, 1, 2];
        let dst = [3usize, 4];
        let plan = ctx.bconv(&src, &dst).unwrap();

        // Build x on the source basis with known exact value.
        let x_exact: u64 = 987_654_321_123;
        let src_moduli: Vec<Modulus> = src.iter().map(|&i| ctx.moduli()[i]).collect();
        let chans: Vec<Vec<u64>> =
            src_moduli.iter().map(|m| vec![x_exact % m.value(); 16]).collect();
        let refs: Vec<&[u64]> = chans.iter().map(|c| c.as_slice()).collect();
        let out = plan.apply(&refs).unwrap();

        let q_prod = UBig::product_of(src_moduli.iter().map(|m| m.value()));
        for (j, &dj) in dst.iter().enumerate() {
            let pj = ctx.moduli()[dj];
            let got = out[j][0];
            // got must equal (x + u*Q) mod p_j for some u in [0, L).
            let mut matched = false;
            for u in 0..src.len() as u64 {
                let shifted = UBig::from_u64(x_exact).add(&q_prod.mul_u64(u));
                if shifted.rem_u64(pj.value()) == got {
                    matched = true;
                    break;
                }
            }
            assert!(matched, "Bconv result off by more than (L-1)·Q");
        }
    }

    #[test]
    fn bconv_single_channel_is_exact() {
        // With a single source channel Q/q_0 = 1, so the fast conversion has
        // no u·Q slack: the result is exactly x mod p_j for x < q_0.
        let ctx = context(8, 4);
        let plan = ctx.bconv(&[0], &[2, 3]).unwrap();
        let x = 42_424_242u64 % ctx.moduli()[0].value();
        let chan = vec![x; 8];
        let out = plan.apply(&[chan.as_slice()]).unwrap();
        for (j, &dj) in [2usize, 3].iter().enumerate() {
            assert_eq!(out[j][0], x % ctx.moduli()[dj].value());
        }
    }

    #[test]
    fn bconv_of_zero_is_zero() {
        let ctx = context(8, 4);
        let plan = ctx.bconv(&[0, 1, 2], &[3]).unwrap();
        let z = vec![0u64; 8];
        let out = plan.apply(&[z.as_slice(), z.as_slice(), z.as_slice()]).unwrap();
        assert!(out[0].iter().all(|&v| v == 0));
    }

    #[test]
    fn moddown_divides_by_p() {
        // moddown(P * y) == y exactly (no rounding error when P | x).
        let ctx = context(8, 4);
        let q_idx = [0usize, 1];
        let p_idx = [2usize, 3];
        let p_prod = UBig::product_of(p_idx.iter().map(|&i| ctx.moduli()[i].value()));
        let y: u64 = 777;
        let x = p_prod.mul_u64(y); // exact multiple of P
        let q_chans: Vec<Vec<u64>> =
            q_idx.iter().map(|&i| vec![x.rem_u64(ctx.moduli()[i].value()); 8]).collect();
        let p_chans: Vec<Vec<u64>> =
            p_idx.iter().map(|&i| vec![x.rem_u64(ctx.moduli()[i].value()); 8]).collect();
        let qr: Vec<&[u64]> = q_chans.iter().map(|c| c.as_slice()).collect();
        let pr: Vec<&[u64]> = p_chans.iter().map(|c| c.as_slice()).collect();
        let out = ctx.moddown(&qr, &pr, &q_idx, &p_idx).unwrap();
        for (k, &qi) in q_idx.iter().enumerate() {
            assert_eq!(out[k][0], y % ctx.moduli()[qi].value());
        }
    }

    #[test]
    fn bconv_rejects_overlap_and_bad_indices() {
        let ctx = context(8, 3);
        assert!(ctx.bconv(&[0, 1], &[1]).is_err());
        assert!(ctx.bconv(&[], &[1]).is_err());
        assert!(ctx.bconv(&[0], &[7]).is_err());
    }

    #[test]
    fn rns_poly_arithmetic() {
        let ctx = context(16, 2);
        let a = RnsPoly::from_signed(&[1, 2, 3], 16, ctx.moduli());
        let b = RnsPoly::from_signed(&[10, 20, 30], 16, ctx.moduli());
        let s = a.add(&b).unwrap();
        assert_eq!(s.crt_coefficient(1), UBig::from_u64(22));
        assert_eq!(s.sub(&b).unwrap(), a);
        let z = a.add(&a.neg().unwrap()).unwrap();
        assert!(z.channels().iter().all(|c| c.coeffs().iter().all(|&v| v == 0)));
    }

    #[test]
    fn rns_poly_ntt_multiplication() {
        let ctx = context(16, 2);
        let mut a = RnsPoly::from_signed(&[0, 1], 16, ctx.moduli()); // X
        let mut b = RnsPoly::from_signed(&[0, 0, 1], 16, ctx.moduli()); // X^2
        a.to_ntt(ctx.tables()).unwrap();
        b.to_ntt(ctx.tables()).unwrap();
        let mut p = a.mul_pointwise(&b).unwrap();
        p.to_coeff(ctx.tables()).unwrap();
        assert_eq!(p.crt_coefficient(3), UBig::from_u64(1)); // X^3
    }

    #[test]
    fn domain_guard_on_mul() {
        let ctx = context(16, 2);
        let a = RnsPoly::from_signed(&[1], 16, ctx.moduli());
        assert!(a.mul_pointwise(&a).is_err());
    }
}
