//! Randomness for key generation and encryption.
//!
//! Research-reproduction quality: distributions are statistically faithful
//! (rejection-free uniform sampling, Box–Muller discrete Gaussian) but no
//! constant-time guarantees are attempted.

use rand::Rng;

/// Samples `n` uniform residues in `[0, q)` without modulo bias.
pub fn sample_uniform<R: Rng + ?Sized>(q: u64, n: usize, rng: &mut R) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..q)).collect()
}

/// Samples `n` ternary coefficients in `{-1, 0, 1}` uniformly — the secret
/// key distribution used by both schemes here.
pub fn sample_ternary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(-1..=1)).collect()
}

/// Samples `n` centered discrete Gaussian values with standard deviation
/// `sigma` (rounded Box–Muller; fine for noise terms in a reproduction).
pub fn sample_gaussian<R: Rng + ?Sized>(sigma: f64, n: usize, rng: &mut R) -> Vec<i64> {
    GaussianSampler::new(sigma).sample_vec(n, rng)
}

/// A reusable discrete Gaussian sampler.
///
/// # Example
///
/// ```
/// use fhe_math::GaussianSampler;
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let s = GaussianSampler::new(3.2);
/// let noise = s.sample_vec(1024, &mut rng);
/// assert_eq!(noise.len(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianSampler {
    sigma: f64,
}

impl GaussianSampler {
    /// Creates a sampler with the given standard deviation (`sigma ≥ 0`;
    /// zero yields the constant 0).
    pub fn new(sigma: f64) -> Self {
        GaussianSampler { sigma: sigma.max(0.0) }
    }

    /// The standard deviation.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one rounded Gaussian sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        if self.sigma == 0.0 {
            return 0;
        }
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (g * self.sigma).round() as i64
    }

    /// Draws `n` rounded Gaussian samples.
    pub fn sample_vec<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<i64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let q = 65537;
        let v = sample_uniform(q, 10_000, &mut rng);
        assert!(v.iter().all(|&x| x < q));
        // Crude uniformity: mean near q/2 within 2%.
        let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!((mean - q as f64 / 2.0).abs() < q as f64 * 0.02, "mean {mean}");
    }

    #[test]
    fn ternary_support() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let v = sample_ternary(3000, &mut rng);
        assert!(v.iter().all(|&x| (-1..=1).contains(&x)));
        for target in [-1i64, 0, 1] {
            let count = v.iter().filter(|&&x| x == target).count();
            assert!(count > 700, "value {target} badly under-represented: {count}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sigma = 3.2;
        let v = sample_gaussian(sigma, 50_000, &mut rng);
        let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let var: f64 = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.15, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_constant_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(GaussianSampler::new(0.0).sample_vec(100, &mut rng).iter().all(|&x| x == 0));
    }
}
