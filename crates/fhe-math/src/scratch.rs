//! Reusable scratch buffers for allocation-free kernel hot paths.
//!
//! Steady-state FHE evaluation repeats the same kernel shapes (channel
//! vectors of one ring degree) thousands of times; allocating each
//! intermediate fresh puts the allocator on the critical path. A
//! [`Scratch`] is a simple free-list of `Vec<u64>` buffers: kernels
//! [`take`](Scratch::take) a zeroed buffer, use it, and [`put`](Scratch::put)
//! it back, so after warm-up the pool serves every request from capacity
//! already allocated.
//!
//! Kernels that cannot thread a pool through their signature use the
//! per-thread pool via [`Scratch::with_thread_local`]. Worker threads
//! spawned by [`crate::par`] each get their own pool (no locking); those
//! pools live only for the parallel region, so cross-call reuse is a
//! property of the sequential path and the caller thread — the parallel
//! path amortizes its allocations across workers instead.

use std::cell::RefCell;

/// A free-list of reusable `u64` buffers.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<u64>>,
}

impl Scratch {
    /// An empty pool.
    pub const fn new() -> Self {
        Scratch { pool: Vec::new() }
    }

    /// A zeroed buffer of length `len`, reusing pooled capacity when
    /// available.
    pub fn take(&mut self, len: usize) -> Vec<u64> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<u64>) {
        // Keep the pool bounded: drop tiny buffers and cap the list length
        // so a one-off giant workload cannot pin memory forever.
        if self.pool.len() < 64 && buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Number of pooled buffers (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Runs `f` with this thread's pool. Nested calls on the same thread
    /// are fine: the pool is handed out once per call frame via
    /// `RefCell`, and inner frames simply see whatever buffers the outer
    /// frame has not taken.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
        thread_local! {
            static POOL: RefCell<Scratch> = const { RefCell::new(Scratch::new()) };
        }
        POOL.with(|cell| match cell.try_borrow_mut() {
            Ok(mut pool) => f(&mut pool),
            // Re-entrant call (an outer frame holds the pool): use a
            // transient pool rather than panicking.
            Err(_) => f(&mut Scratch::new()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_after_reuse() {
        let mut s = Scratch::new();
        let mut a = s.take(16);
        a.iter_mut().for_each(|x| *x = 7);
        let cap = a.capacity();
        s.put(a);
        let b = s.take(8);
        assert!(b.iter().all(|&x| x == 0));
        assert_eq!(b.len(), 8);
        assert_eq!(b.capacity(), cap, "pooled capacity is reused");
    }

    #[test]
    fn thread_local_pool_reuses_capacity() {
        let cap0 = Scratch::with_thread_local(|s| {
            let buf = s.take(1024);
            let cap = buf.capacity();
            s.put(buf);
            cap
        });
        let cap1 = Scratch::with_thread_local(|s| {
            let buf = s.take(512);
            let cap = buf.capacity();
            s.put(buf);
            cap
        });
        assert_eq!(cap0, cap1, "second frame reuses the pooled buffer");
    }

    #[test]
    fn reentrant_thread_local_does_not_panic() {
        Scratch::with_thread_local(|outer| {
            let buf = outer.take(4);
            Scratch::with_thread_local(|inner| {
                let b2 = inner.take(4);
                inner.put(b2);
            });
            outer.put(buf);
        });
    }
}
