//! Reusable scratch buffers for allocation-free kernel hot paths.
//!
//! Steady-state FHE evaluation repeats the same kernel shapes (channel
//! vectors of one ring degree) thousands of times; allocating each
//! intermediate fresh puts the allocator on the critical path. A
//! [`Scratch`] is a simple free-list of `Vec<u64>` buffers: kernels
//! [`take`](Scratch::take) a zeroed buffer, use it, and [`put`](Scratch::put)
//! it back, so after warm-up the pool serves every request from capacity
//! already allocated.
//!
//! Kernels that cannot thread a pool through their signature use the
//! per-thread pool via [`Scratch::with_thread_local`]. Worker threads
//! spawned by [`crate::par`] each get their own pool (no locking); those
//! pools live only for the parallel region, so cross-call reuse is a
//! property of the sequential path and the caller thread — the parallel
//! path amortizes its allocations across workers instead.
//!
//! Every pool keeps effectiveness watermarks — [`take`](Scratch::take)
//! hits vs. misses and the most capacity the free-list ever held — and
//! mirrors them into process-wide relaxed atomics so a sampler gauge (or
//! [`scratch_stats`]) can answer "are the hot paths actually warm?"
//! without walking threads.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_HIGH_WATER: AtomicU64 = AtomicU64::new(0);
static GLOBAL_TRIMS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_TRIMMED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Consecutive takes at well under the retained capacity before the pool
/// halves itself (see [`Scratch::take`]). Small enough that a server
/// worker decays within one batch of small requests, large enough that a
/// bursty caller alternating big/small shapes never trims.
const TRIM_STREAK: u32 = 32;

/// Pool effectiveness counters (per pool via [`Scratch::stats`],
/// process-wide via [`scratch_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// `take` calls served entirely from pooled capacity (no allocation).
    pub hits: u64,
    /// `take` calls that had to grow or allocate a buffer.
    pub misses: u64,
    /// Most bytes of capacity the free-list ever held at once. For the
    /// process-wide view this is the maximum over individual pools, not
    /// their sum — it bounds any one pool's retention.
    pub high_water_bytes: u64,
    /// Trim events: the pool halved its retained capacity after
    /// [`TRIM_STREAK`] consecutive takes far below it.
    pub trims: u64,
    /// Total capacity bytes released back to the allocator by trims.
    pub trimmed_bytes: u64,
}

/// Process-wide scratch-pool watermarks, aggregated over every pool on
/// every thread (relaxed counters; exact once threads quiesce).
pub fn scratch_stats() -> ScratchStats {
    ScratchStats {
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_MISSES.load(Ordering::Relaxed),
        high_water_bytes: GLOBAL_HIGH_WATER.load(Ordering::Relaxed),
        trims: GLOBAL_TRIMS.load(Ordering::Relaxed),
        trimmed_bytes: GLOBAL_TRIMMED_BYTES.load(Ordering::Relaxed),
    }
}

/// A free-list of reusable `u64` buffers.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<u64>>,
    /// Total capacity bytes currently resident in `pool`.
    pooled_bytes: u64,
    /// Consecutive takes that requested less than half the retained
    /// capacity; reaching [`TRIM_STREAK`] triggers a trim.
    below_streak: u32,
    stats: ScratchStats,
}

impl Scratch {
    /// An empty pool.
    pub const fn new() -> Self {
        Scratch {
            pool: Vec::new(),
            pooled_bytes: 0,
            below_streak: 0,
            stats: ScratchStats {
                hits: 0,
                misses: 0,
                high_water_bytes: 0,
                trims: 0,
                trimmed_bytes: 0,
            },
        }
    }

    /// A zeroed buffer of length `len`, reusing pooled capacity when
    /// available.
    ///
    /// The pool also decays here: a take asking for less than half the
    /// *largest* retained buffer bumps a streak counter, and
    /// [`TRIM_STREAK`] such takes in a row halve the retention (largest
    /// buffers dropped first). A long-running worker whose one giant
    /// request is long gone therefore converges back toward its
    /// steady-state footprint instead of pinning the peak forever. The
    /// watermark is the largest buffer, not the pool total, so a warm
    /// pool of many same-size buffers never trims itself: each take
    /// matches the largest and resets the streak, keeping the zero-alloc
    /// steady state intact.
    pub fn take(&mut self, len: usize) -> Vec<u64> {
        let req_bytes = (len as u64).saturating_mul(8);
        let largest = self.pool.iter().map(|b| (b.capacity() * 8) as u64).max().unwrap_or(0);
        if largest > 0 && req_bytes.saturating_mul(2) < largest {
            self.below_streak += 1;
            if self.below_streak >= TRIM_STREAK {
                self.trim(self.pooled_bytes / 2);
                self.below_streak = 0;
            }
        } else {
            self.below_streak = 0;
        }
        let mut buf = self.pool.pop().unwrap_or_default();
        self.pooled_bytes -= (buf.capacity() * 8) as u64;
        // A hit must not touch the allocator: the popped buffer's capacity
        // already covers the request. Growing counts as a miss even when a
        // buffer was pooled.
        if buf.capacity() >= len {
            self.stats.hits += 1;
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses += 1;
            GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
        }
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<u64>) {
        // Keep the pool bounded: drop tiny buffers and cap the list length
        // so a one-off giant workload cannot pin memory forever.
        if self.pool.len() < 64 && buf.capacity() > 0 {
            self.pooled_bytes += (buf.capacity() * 8) as u64;
            self.pool.push(buf);
            if self.pooled_bytes > self.stats.high_water_bytes {
                self.stats.high_water_bytes = self.pooled_bytes;
                GLOBAL_HIGH_WATER.fetch_max(self.pooled_bytes, Ordering::Relaxed);
            }
        }
    }

    /// Drops pooled buffers, largest first, until at most `target` bytes
    /// of capacity remain. Largest-first matters: under sustained small
    /// demand the big outlier is the one pinning memory, and the small
    /// buffers that still serve the live shapes survive.
    fn trim(&mut self, target: u64) {
        let before = self.pooled_bytes;
        while self.pooled_bytes > target {
            let Some((idx, _)) = self.pool.iter().enumerate().max_by_key(|(_, b)| b.capacity())
            else {
                break;
            };
            let dropped = self.pool.swap_remove(idx);
            self.pooled_bytes -= (dropped.capacity() * 8) as u64;
        }
        let released = before - self.pooled_bytes;
        self.stats.trims += 1;
        self.stats.trimmed_bytes += released;
        GLOBAL_TRIMS.fetch_add(1, Ordering::Relaxed);
        GLOBAL_TRIMMED_BYTES.fetch_add(released, Ordering::Relaxed);
    }

    /// Number of pooled buffers (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Capacity bytes currently retained by the free-list.
    pub fn retained_bytes(&self) -> u64 {
        self.pooled_bytes
    }

    /// This pool's hit/miss/high-water counters.
    pub fn stats(&self) -> ScratchStats {
        self.stats
    }

    /// Runs `f` with this thread's pool. Nested calls on the same thread
    /// are fine: the pool is handed out once per call frame via
    /// `RefCell`, and inner frames simply see whatever buffers the outer
    /// frame has not taken.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
        thread_local! {
            static POOL: RefCell<Scratch> = const { RefCell::new(Scratch::new()) };
        }
        POOL.with(|cell| match cell.try_borrow_mut() {
            Ok(mut pool) => f(&mut pool),
            // Re-entrant call (an outer frame holds the pool): use a
            // transient pool rather than panicking.
            Err(_) => f(&mut Scratch::new()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_after_reuse() {
        let mut s = Scratch::new();
        let mut a = s.take(16);
        a.iter_mut().for_each(|x| *x = 7);
        let cap = a.capacity();
        s.put(a);
        let b = s.take(8);
        assert!(b.iter().all(|&x| x == 0));
        assert_eq!(b.len(), 8);
        assert_eq!(b.capacity(), cap, "pooled capacity is reused");
    }

    #[test]
    fn thread_local_pool_reuses_capacity() {
        let cap0 = Scratch::with_thread_local(|s| {
            let buf = s.take(1024);
            let cap = buf.capacity();
            s.put(buf);
            cap
        });
        let cap1 = Scratch::with_thread_local(|s| {
            let buf = s.take(512);
            let cap = buf.capacity();
            s.put(buf);
            cap
        });
        assert_eq!(cap0, cap1, "second frame reuses the pooled buffer");
    }

    #[test]
    fn reentrant_thread_local_does_not_panic() {
        Scratch::with_thread_local(|outer| {
            let buf = outer.take(4);
            Scratch::with_thread_local(|inner| {
                let b2 = inner.take(4);
                inner.put(b2);
            });
            outer.put(buf);
        });
    }

    #[test]
    fn grow_then_shrink_releases_peak_capacity() {
        let mut s = Scratch::new();
        // Grow: one transient giant request (16 MiB) is pooled on put.
        let big = s.take(1 << 21);
        s.put(big);
        let peak = s.retained_bytes();
        assert!(peak >= (1u64 << 21) * 8);

        // Under alloc-track the trim must actually return memory to the
        // allocator, not just forget the pointer in our own accounting.
        #[cfg(feature = "alloc-track")]
        let live_before = telemetry::alloc::global_stats().live_bytes;

        // Shrink: sustained small demand decays retention geometrically.
        for _ in 0..(TRIM_STREAK as usize * 4) {
            let b = s.take(64);
            s.put(b);
        }
        assert!(s.stats().trims >= 1, "sustained small takes must trim");
        assert!(
            s.retained_bytes() < peak / 2,
            "retained {} bytes, peak was {peak}",
            s.retained_bytes()
        );
        assert!(s.stats().trimmed_bytes >= peak / 2);

        #[cfg(feature = "alloc-track")]
        {
            let live_after = telemetry::alloc::global_stats().live_bytes;
            // Concurrent tests allocate too, so demand only half the
            // giant buffer's release to show up in the global gauge.
            assert!(
                live_before.saturating_sub(live_after) >= peak / 2,
                "live bytes went {live_before} -> {live_after}, \
                 expected a drop of at least {}",
                peak / 2
            );
        }

        // The small shapes that drove the decay still hit the pool.
        let warm = s.stats();
        let b = s.take(64);
        s.put(b);
        assert_eq!(s.stats().hits, warm.hits + 1);
    }

    #[test]
    fn warm_uniform_pool_never_trims() {
        let mut s = Scratch::new();
        // A steady-state worker: same shape over and over, several
        // buffers in flight at once. The decay policy must not evict
        // capacity that is actively serving requests.
        for _ in 0..(TRIM_STREAK as usize * 8) {
            let a = s.take(1024);
            let b = s.take(1024);
            s.put(a);
            s.put(b);
        }
        assert_eq!(s.stats().trims, 0);
        assert_eq!(s.stats().misses, 2, "only the cold takes allocate");
    }

    #[test]
    fn watermarks_track_hits_misses_and_high_water() {
        let global_before = scratch_stats();
        let mut s = Scratch::new();
        assert_eq!(s.stats(), ScratchStats::default());

        // Cold pool: the first take allocates.
        let a = s.take(128);
        assert_eq!((s.stats().hits, s.stats().misses), (0, 1));
        let cap_bytes = (a.capacity() * 8) as u64;
        s.put(a);
        assert_eq!(s.stats().high_water_bytes, cap_bytes);

        // Warm pool, smaller request: served without allocating.
        let b = s.take(64);
        assert_eq!((s.stats().hits, s.stats().misses), (1, 1));
        s.put(b);

        // Warm pool, larger request: the pooled buffer must grow — a miss.
        let c = s.take(4096);
        assert_eq!((s.stats().hits, s.stats().misses), (1, 2));
        let big_bytes = (c.capacity() * 8) as u64;
        s.put(c);
        assert_eq!(s.stats().high_water_bytes, big_bytes.max(cap_bytes));

        // The process-wide view advanced by at least this pool's traffic
        // (other tests run concurrently, so >=, not ==).
        let global_after = scratch_stats();
        assert!(global_after.hits > global_before.hits);
        assert!(global_after.misses >= global_before.misses + 2);
        assert!(global_after.high_water_bytes >= s.stats().high_water_bytes);
    }
}
