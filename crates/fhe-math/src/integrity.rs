//! Cheap per-limb integrity checksums for RNS data.
//!
//! Alchemist's scratchpads and HBM links (181 mm² of SRAM + 2×HBM2) are
//! exactly the structures that suffer bit upsets in deployed silicon; the
//! software mirror is a rolling checksum over every residue limb of a
//! ciphertext, *sealed* at construction and *verified* at scheme-API
//! boundaries. The fault-injection campaign (`crates/faultsim`) measures
//! the detection power this buys: any corruption of a single limb after
//! sealing is guaranteed to change the checksum (see below), so a
//! checksum-protected ciphertext can never silently carry a bit-flip
//! across an API boundary.
//!
//! # Guarantee
//!
//! The digest is a degree-`L` polynomial `h = Σ mix(limb_k) · M^(L−k)` over
//! `Z/2^64` with an **odd** (hence invertible) multiplier `M`, where `mix`
//! is the splitmix64 finalizer — a bijection on `u64`. Changing one limb
//! changes its mixed value by some `δ ≠ 0`, which changes `h` by
//! `δ · M^(L−k) ≠ 0` because `M` is a unit. Any *single-limb* corruption
//! (one or many bit-flips inside one limb) is therefore detected with
//! certainty, not merely with high probability; multi-limb corruptions are
//! detected unless they collide in the full 64-bit state (~2⁻⁶⁴).
//!
//! # Cost model
//!
//! Sealing/verifying is one mix + one multiply-add per limb — `O(L·n)`
//! with a constant far below a single NTT butterfly stage. It is still on
//! the hot path of every evaluator call, so it is doubly gated:
//!
//! * **compile-time**: the `integrity-checksum` cargo feature (default on,
//!   forwarded through the workspace facade) compiles the machinery out
//!   entirely when disabled;
//! * **run-time**: [`set_checksum_enabled`] flips a process-global switch —
//!   benchmark binaries start with checksums disabled so perf baselines
//!   stay checksum-free by default (`bench_kernels --checksum` opts in).

use crate::{MathError, RnsPoly};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-global runtime switch (compile-time feature permitting).
static CHECKSUM_ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether ciphertext checksums are currently active: requires both the
/// `integrity-checksum` cargo feature and the runtime switch (default on).
#[inline]
pub fn checksum_enabled() -> bool {
    cfg!(feature = "integrity-checksum") && CHECKSUM_ENABLED.load(Ordering::Relaxed)
}

/// Turns ciphertext sealing/verification on or off at runtime
/// (process-global). A no-op when the `integrity-checksum` feature is
/// compiled out. Benchmarks disable it so hot-path measurements stay
/// checksum-free; the fault campaign re-enables it per configuration.
pub fn set_checksum_enabled(on: bool) {
    CHECKSUM_ENABLED.store(on, Ordering::Relaxed);
}

/// splitmix64 finalizer: a bijective 64-bit mix (same constants the
/// conformance fuzzer's PRNG is pinned to by published vectors).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Odd multiplier for the rolling combine (invertible mod 2^64), so a
/// change at any limb position propagates to the final state.
const ROLL: u64 = 0x9E37_79B9_7F4A_7C15 | 1;

/// Rolling digest over a sequence of limbs, order-sensitive.
#[inline]
fn roll_limbs(mut h: u64, limbs: &[u64]) -> u64 {
    for &x in limbs {
        h = h.wrapping_mul(ROLL).wrapping_add(mix64(x));
    }
    h
}

/// Checksum of a set of RNS polynomials (e.g. the `(c0, c1)` pair of a
/// ciphertext): covers every residue limb of every channel, the channel
/// structure, and the domain, in order. Pure function of the data —
/// independent of the runtime switch, so harnesses can always compute it.
pub fn rns_checksum(polys: &[&RnsPoly]) -> u64 {
    let mut h = 0xA1C4_0E57_u64; // domain-separation constant
    for p in polys {
        h = h.wrapping_mul(ROLL).wrapping_add(mix64(p.num_channels() as u64));
        h = h.wrapping_mul(ROLL).wrapping_add(mix64(p.domain() as u64));
        for c in p.channels() {
            h = roll_limbs(h, c.coeffs());
        }
    }
    h
}

/// Seals data: returns its checksum when checksums are active, `None`
/// otherwise. A `None` seal is "never sealed" — verification skips it.
pub fn seal(polys: &[&RnsPoly]) -> Option<u64> {
    if checksum_enabled() {
        Some(rns_checksum(polys))
    } else {
        None
    }
}

/// Verifies previously sealed data: recomputes the checksum and compares.
/// Skips silently when the data was never sealed (`seal.is_none()`) or
/// checksums are currently disabled.
///
/// # Errors
///
/// Returns [`MathError::IntegrityViolation`] on mismatch, tagged with
/// `context` (the API boundary that caught the corruption).
pub fn verify(
    polys: &[&RnsPoly],
    seal: Option<u64>,
    context: &'static str,
) -> Result<(), MathError> {
    if !checksum_enabled() {
        return Ok(());
    }
    match seal {
        Some(expect) if rns_checksum(polys) != expect => {
            Err(MathError::IntegrityViolation { context })
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_ntt_primes, Modulus, Poly, RnsPoly};

    fn sample_poly() -> RnsPoly {
        let qs = generate_ntt_primes(30, 16, 2).unwrap();
        let channels = qs
            .iter()
            .map(|&q| {
                let m = Modulus::new(q).unwrap();
                let coeffs: Vec<u64> = (0..16).map(|i| (i as u64 * 7 + 3) % q).collect();
                Poly::from_coeffs(coeffs, m).unwrap()
            })
            .collect();
        RnsPoly::from_channels(channels).unwrap()
    }

    #[test]
    fn every_single_bit_flip_changes_the_checksum() {
        let p = sample_poly();
        let base = rns_checksum(&[&p]);
        for ch in 0..p.num_channels() {
            for idx in 0..p.n() {
                for bit in 0..30 {
                    let mut q = p.clone();
                    let coeffs = q.channels_mut()[ch].coeffs_mut();
                    coeffs[idx] ^= 1 << bit;
                    assert_ne!(
                        rns_checksum(&[&q]),
                        base,
                        "undetected flip at ch={ch} idx={idx} bit={bit}"
                    );
                }
            }
        }
    }

    #[test]
    fn limb_swap_is_detected() {
        let p = sample_poly();
        let base = rns_checksum(&[&p]);
        let mut q = p.clone();
        let coeffs = q.channels_mut()[0].coeffs_mut();
        coeffs.swap(3, 5);
        assert_ne!(rns_checksum(&[&q]), base, "position swap must change the rolling digest");
    }

    #[test]
    fn verify_round_trip_and_mismatch() {
        if !cfg!(feature = "integrity-checksum") {
            return; // machinery compiled out; seal() is always None
        }
        set_checksum_enabled(true);
        let p = sample_poly();
        let s = seal(&[&p]);
        assert!(s.is_some());
        verify(&[&p], s, "test").unwrap();
        let mut q = p.clone();
        q.channels_mut()[1].coeffs_mut()[0] ^= 1;
        let err = verify(&[&q], s, "test").unwrap_err();
        assert_eq!(err, MathError::IntegrityViolation { context: "test" });
        // Unsealed data never fails verification.
        verify(&[&q], None, "test").unwrap();
    }
}
