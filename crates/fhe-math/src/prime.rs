//! Prime generation for NTT-friendly RNS moduli.
//!
//! Alchemist adopts SHARP's finding that a 36-bit RNS word size is the sweet
//! spot for arithmetic FHE (paper §5.4); [`generate_ntt_primes`] produces
//! chains of such primes, each satisfying `q ≡ 1 (mod 2N)` so the negacyclic
//! NTT of size `N` exists.

use crate::MathError;

/// Deterministic Miller–Rabin primality test for `u64`.
///
/// Uses the base set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` which is
/// proven deterministic for all 64-bit integers.
///
/// # Example
///
/// ```
/// assert!(fhe_math::is_prime(65537));
/// assert!(!fhe_math::is_prime(65536));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[inline]
fn mul_mod(a: u64, b: u64, n: u64) -> u64 {
    (a as u128 * b as u128 % n as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, n: u64) -> u64 {
    base %= n;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, n);
        }
        base = mul_mod(base, base, n);
        exp >>= 1;
    }
    acc
}

/// Generates `count` distinct primes of the given bit width supporting a
/// negacyclic NTT of size `degree` (i.e. `q ≡ 1 mod 2·degree`), searching
/// downward from `2^bits`.
///
/// # Errors
///
/// * [`MathError::InvalidDegree`] if `degree` is not a power of two in
///   `[8, 2^17]`.
/// * [`MathError::InvalidParameter`] if `bits` is too small to host
///   `2·degree`-aligned primes or exceeds 61.
/// * [`MathError::PrimeSearchExhausted`] if fewer than `count` primes exist
///   in the bit range.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_math::MathError> {
/// let primes = fhe_math::generate_ntt_primes(36, 1 << 12, 4)?;
/// assert_eq!(primes.len(), 4);
/// for q in primes {
///     assert!(fhe_math::is_prime(q));
///     assert_eq!(q % (2 << 12), 1);
/// }
/// # Ok(())
/// # }
/// ```
pub fn generate_ntt_primes(bits: u32, degree: usize, count: usize) -> Result<Vec<u64>, MathError> {
    if !degree.is_power_of_two() || !(8..=(1 << 17)).contains(&degree) {
        return Err(MathError::InvalidDegree { degree });
    }
    generate_primes_with_step(bits, 2 * degree as u64, count)
}

/// Generates `count` distinct primes of the given bit width satisfying
/// `q ≡ 1 (mod step)`, searching downward from `2^bits`. BGV uses this with
/// `step = lcm(2N, t)` so modulus switching preserves the plaintext modulo
/// `t` without tracked correction factors.
///
/// # Errors
///
/// Same conditions as [`generate_ntt_primes`], with `step` in place of the
/// degree constraint.
pub fn generate_primes_with_step(
    bits: u32,
    step: u64,
    count: usize,
) -> Result<Vec<u64>, MathError> {
    if step == 0 {
        return Err(MathError::InvalidParameter { detail: "step must be positive".into() });
    }
    if bits > 61 {
        return Err(MathError::InvalidParameter {
            detail: format!("prime width {bits} exceeds the 61-bit modulus limit"),
        });
    }
    if bits >= 64 || (1u64 << bits) <= step {
        return Err(MathError::InvalidParameter {
            detail: format!("2^{bits} is not larger than the step {step}"),
        });
    }
    let hi = 1u64 << bits;
    let lo = 1u64 << (bits - 1);
    // Largest candidate ≡ 1 (mod step) strictly below 2^bits.
    let mut candidate = (hi - 2) / step * step + 1;
    let mut primes = Vec::with_capacity(count);
    while primes.len() < count && candidate > lo {
        if is_prime(candidate) {
            primes.push(candidate);
        }
        candidate -= step;
    }
    if primes.len() < count {
        return Err(MathError::PrimeSearchExhausted {
            bits,
            requested: count,
            found: primes.len(),
        });
    }
    Ok(primes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537, 2_147_483_647];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 9, 91, 561, 65535, 2_147_483_649];
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Known strong pseudoprimes to small bases.
        for c in [3_215_031_751u64, 3_474_749_660_383, 341_550_071_728_321] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn generated_primes_support_ntt() {
        let primes = generate_ntt_primes(36, 1 << 14, 6).unwrap();
        assert_eq!(primes.len(), 6);
        let mut sorted = primes.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "primes must be distinct");
        for q in primes {
            assert!(is_prime(q));
            assert_eq!(q % (2u64 << 14), 1);
            assert_eq!(64 - q.leading_zeros(), 36);
        }
    }

    #[test]
    fn step_congruence_primes() {
        // BGV-style: q ≡ 1 mod lcm(2N, t) with N = 64, t = 257.
        let step = 128u64 * 257;
        let primes = generate_primes_with_step(40, step, 3).unwrap();
        for q in primes {
            assert!(is_prime(q));
            assert_eq!(q % step, 1);
            assert_eq!(q % 128, 1);
            assert_eq!(q % 257, 1);
        }
        assert!(generate_primes_with_step(40, 0, 1).is_err());
    }

    #[test]
    fn rejects_invalid_requests() {
        assert!(generate_ntt_primes(36, 100, 1).is_err()); // not a power of two
        assert!(generate_ntt_primes(62, 1 << 10, 1).is_err()); // too wide
        assert!(generate_ntt_primes(10, 1 << 12, 1).is_err()); // 2N > 2^bits
        assert!(generate_ntt_primes(15, 8, 10_000).is_err()); // exhausted
    }
}
