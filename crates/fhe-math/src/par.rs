//! Channel-level data-parallel execution backend.
//!
//! Alchemist's scaling claim (paper §5.3, Table 4) rests on slot-partitioned
//! data parallelism: 128 computing units each own a slot range and process
//! every RNS channel and dnum group without inter-unit traffic. The software
//! mirror of that claim is the *RNS-channel axis*: per-channel NTTs, the
//! per-destination-channel Bconv dot products, and element-wise RNS
//! arithmetic are all embarrassingly parallel. This module provides the
//! minimal runner the kernels share.
//!
//! Design constraints:
//!
//! * **No external dependency.** The backend is `std::thread::scope` —
//!   workers borrow the caller's slices directly, no `'static` bounds, no
//!   unsafe code.
//! * **Adaptive.** Every entry point takes a per-item work estimate (in
//!   element-operations); below [`min_work`] total, or on a single-core
//!   host, the loop runs inline on the caller thread. Small `n` / few
//!   channels never pay thread-spawn latency.
//! * **Deterministic.** Work is partitioned into disjoint contiguous chunks
//!   and each item is processed by exactly the same scalar code as the
//!   sequential path, so parallel and sequential execution are
//!   bit-identical (asserted by `tests/parallel_differential.rs`).
//! * **Runtime-controllable.** [`set_max_threads`] lets one process compare
//!   sequential vs parallel execution (the `bench_kernels` baseline), and
//!   [`set_min_work`] lets tests force the parallel path at toy sizes.
//!
//! With the `parallel` cargo feature disabled the runner degenerates to the
//! plain sequential loop and spawns nothing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Requested thread cap: 0 = auto (one per available core).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Minimum total work (element-operations) before threads are spawned.
static MIN_WORK: AtomicU64 = AtomicU64::new(DEFAULT_MIN_WORK);

/// Default parallelism threshold: roughly the work of one 2^12-point NTT
/// channel — below this, thread-spawn latency dominates any speedup.
pub const DEFAULT_MIN_WORK: u64 = 1 << 15;

/// Whether the crate was built with the `parallel` feature.
#[inline]
pub fn parallelism_compiled() -> bool {
    cfg!(feature = "parallel")
}

/// Caps worker threads per parallel region; `0` restores auto (one per
/// available core). `1` forces sequential execution — the `bench_kernels`
/// binary uses this to record the sequential baseline in the same process.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The auto thread budget, resolved once per process: the
/// `ALCHEMIST_NUM_THREADS` environment override if set, else one thread
/// per available core. Cached because `max_threads` sits on every kernel's
/// dispatch path and the environment / affinity lookups are syscalls.
fn auto_threads() -> usize {
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| {
        if let Ok(v) = std::env::var("ALCHEMIST_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// The effective thread budget: the [`set_max_threads`] cap, else
/// `ALCHEMIST_NUM_THREADS` from the environment, else one per available
/// core. Always ≥ 1; exactly 1 when the `parallel` feature is off.
pub fn max_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    let cap = MAX_THREADS.load(Ordering::Relaxed);
    if cap != 0 {
        return cap.max(1);
    }
    auto_threads()
}

/// Sets the adaptive threshold: total element-operations below which a
/// parallel region runs inline. Tests set `0` to force the threaded path at
/// toy sizes; [`DEFAULT_MIN_WORK`] restores the default.
pub fn set_min_work(work: u64) {
    MIN_WORK.store(work, Ordering::Relaxed);
}

/// The current adaptive threshold (see [`set_min_work`]).
pub fn min_work() -> u64 {
    MIN_WORK.load(Ordering::Relaxed)
}

/// Number of worker threads a region of `items` items × `work_per_item`
/// element-operations would use (1 = run inline).
fn plan_threads(items: usize, work_per_item: u64) -> usize {
    if items < 2 {
        return 1;
    }
    let budget = max_threads();
    if budget < 2 {
        return 1;
    }
    let total = work_per_item.saturating_mul(items as u64);
    if total < min_work() {
        return 1;
    }
    budget.min(items)
}

/// Runs `f(index, &mut item)` for every item, splitting the slice into
/// contiguous per-thread chunks when the total work clears the adaptive
/// threshold. `work_per_item` is the estimated element-operations per item
/// (e.g. `n` for an element-wise pass, `n·log2(n)` for an NTT).
pub fn par_iter_mut<T, F>(items: &mut [T], work_per_item: u64, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = plan_threads(items.len(), work_per_item);
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        for (ci, slice) in items.chunks_mut(chunk).enumerate() {
            let base = ci * chunk;
            scope.spawn(move || {
                for (k, item) in slice.iter_mut().enumerate() {
                    f(base + k, item);
                }
            });
        }
    });
}

/// Parallel map over a shared slice: returns `f(index, &item)` for every
/// item, in order. Built on [`par_iter_mut`] over the output buffer, so the
/// same adaptive threshold applies.
pub fn par_map<T, U, F>(items: &[T], work_per_item: u64, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    par_iter_mut(&mut out, work_per_item, |i, slot| {
        *slot = Some(f(i, &items[i]));
    });
    out.into_iter().map(|v| v.expect("par_map fills every slot")).collect()
}

/// Runs `f(i)` for `i` in `0..count` with the same chunked dispatch as
/// [`par_iter_mut`], for loops whose state is not a `&mut` slice (each
/// iteration must touch disjoint data by construction).
pub fn par_for_each<F>(count: usize, work_per_item: u64, f: F)
where
    F: Fn(usize) + Sync,
{
    let mut indices: Vec<usize> = (0..count).collect();
    par_iter_mut(&mut indices, work_per_item, |_, &mut i| f(i));
}

/// Runs two independent closures, on separate threads when both sides clear
/// half the adaptive threshold. Returns both results.
pub fn join<A, B, RA, RB>(work_a: u64, work_b: u64, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if max_threads() < 2 || work_a.saturating_add(work_b) < min_work() {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global knobs.
    pub(crate) fn knob_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn sequential_below_threshold() {
        let _g = knob_guard();
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        let mut v = vec![0u64; 8];
        par_iter_mut(&mut v, 1, |i, x| *x = i as u64 * 2);
        assert_eq!(v, (0..8).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn forced_parallel_matches_sequential() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(4);
        let mut v = vec![0u64; 1027];
        par_iter_mut(&mut v, 1, |i, x| *x = (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        let expect: Vec<u64> =
            (0..1027).map(|i| (i as u64).wrapping_mul(0x9e3779b97f4a7c15)).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn par_map_preserves_order() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(3);
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(&items, 1, |i, &x| (i as u32) + x);
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        assert_eq!(out, (0..100).map(|i| 2 * i).collect::<Vec<u32>>());
    }

    #[test]
    fn join_returns_both() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(2);
        let (a, b) = join(1 << 20, 1 << 20, || 1 + 1, || "x".repeat(3));
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        assert_eq!((a, b.as_str()), (2, "xxx"));
    }

    #[test]
    fn max_threads_is_at_least_one() {
        assert!(max_threads() >= 1);
    }
}
