//! Channel-level data-parallel execution backend.
//!
//! Alchemist's scaling claim (paper §5.3, Table 4) rests on slot-partitioned
//! data parallelism: 128 computing units each own a slot range and process
//! every RNS channel and dnum group without inter-unit traffic. The software
//! mirror of that claim is the *RNS-channel axis*: per-channel NTTs, the
//! per-destination-channel Bconv dot products, and element-wise RNS
//! arithmetic are all embarrassingly parallel. This module provides the
//! minimal runner the kernels share.
//!
//! Design constraints:
//!
//! * **No external dependency.** The backend is `std::thread::scope` —
//!   workers borrow the caller's slices directly, no `'static` bounds, no
//!   unsafe code.
//! * **Adaptive.** Every entry point takes a per-item work estimate (in
//!   element-operations); below [`min_work`] total, or on a single-core
//!   host, the loop runs inline on the caller thread. Small `n` / few
//!   channels never pay thread-spawn latency.
//! * **Deterministic.** Work is partitioned into disjoint contiguous chunks
//!   and each item is processed by exactly the same scalar code as the
//!   sequential path, so parallel and sequential execution are
//!   bit-identical (asserted by `tests/parallel_differential.rs`).
//! * **Runtime-controllable.** [`set_max_threads`] lets one process compare
//!   sequential vs parallel execution (the `bench_kernels` baseline), and
//!   [`set_min_work`] lets tests force the parallel path at toy sizes.
//!
//! With the `parallel` cargo feature disabled the runner degenerates to the
//! plain sequential loop and spawns nothing.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A panic contained inside one worker chunk of a parallel region.
///
/// Worker bodies run under [`std::panic::catch_unwind`]; a panicking chunk
/// never unwinds across the region boundary and never aborts the process.
/// The remaining chunks run to completion (their outputs for the region are
/// still unspecified — callers must treat the whole output as poisoned) and
/// the caller receives exactly one `ParError` describing the lowest-indexed
/// panicked chunk, so a fault degrades to a clean `Result`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParError {
    /// Worker slot that executed the panicked chunk (worker `w` always owns
    /// chunk `w`; inline regions account to worker 0).
    pub worker: usize,
    /// Index of the panicked contiguous chunk.
    pub chunk: usize,
    /// Stringified panic payload (`&str`/`String` payloads verbatim,
    /// anything else a placeholder).
    pub payload: String,
}

impl fmt::Display for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker {} panicked in chunk {}: {}", self.worker, self.chunk, self.payload)
    }
}

impl std::error::Error for ParError {}

/// Payload used by the deterministic fault-injection hook (see
/// [`inject_worker_panic`]); campaigns match on it to tell injected faults
/// from organic bugs.
pub const INJECTED_PANIC_PAYLOAD: &str = "faultsim: injected worker panic";

/// One-shot fault-injection hook: `usize::MAX` = disarmed, anything else =
/// the chunk index whose next execution panics.
static INJECT_PANIC_CHUNK: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Arms the one-shot panic injector: the next parallel-region chunk with
/// this index (on any entry point, inline or threaded) panics with
/// [`INJECTED_PANIC_PAYLOAD`] before processing its items, then the hook
/// disarms itself. `usize::MAX` is the disarmed sentinel and is rejected.
///
/// This exists for the fault-injection campaign (`crates/faultsim`) and the
/// containment tests; it is a no-op for correctness — a triggered injection
/// surfaces as [`ParError`] exactly like an organic worker panic.
pub fn inject_worker_panic(chunk: usize) {
    assert!(chunk != usize::MAX, "usize::MAX is the disarmed sentinel");
    INJECT_PANIC_CHUNK.store(chunk, Ordering::Relaxed);
}

/// Disarms the panic injector; returns whether it was still armed (i.e. the
/// injection never fired — campaigns count that as a benign outcome).
pub fn clear_injected_panic() -> bool {
    INJECT_PANIC_CHUNK.swap(usize::MAX, Ordering::Relaxed) != usize::MAX
}

/// One relaxed load on the fast path; only the armed chunk attempts the CAS.
#[inline]
fn take_injected_panic(chunk: usize) -> bool {
    if INJECT_PANIC_CHUNK.load(Ordering::Relaxed) != chunk {
        return false;
    }
    INJECT_PANIC_CHUNK
        .compare_exchange(chunk, usize::MAX, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
}

/// Stringifies a `catch_unwind` payload.
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Ok(s) = payload.downcast::<String>() {
        *s
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one chunk body with injection check + panic containment. A
/// contained panic bumps the `par.worker_panic.contained` counter and asks
/// the flight recorder (if one is armed) to dump the recent event ring, so
/// long-running services get a post-mortem trace without re-running.
fn run_contained<R>(worker: usize, chunk: usize, body: impl FnOnce() -> R) -> Result<R, ParError> {
    catch_unwind(AssertUnwindSafe(|| {
        if take_injected_panic(chunk) {
            panic!("{INJECTED_PANIC_PAYLOAD}");
        }
        body()
    }))
    .map_err(|payload| {
        telemetry::count_named("par.worker_panic.contained", 1);
        let _ = telemetry::flight::fault_dump("worker_panic");
        ParError { worker, chunk, payload: payload_string(payload) }
    })
}

/// Records a contained error, keeping the lowest chunk index so the surfaced
/// error is deterministic regardless of thread interleaving.
fn store_error(slot: &Mutex<Option<ParError>>, err: ParError) {
    let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
    match guard.as_ref() {
        Some(prev) if prev.chunk <= err.chunk => {}
        _ => *guard = Some(err),
    }
}

/// Requested thread cap: 0 = auto (one per available core).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Minimum total work (element-operations) before threads are spawned.
static MIN_WORK: AtomicU64 = AtomicU64::new(DEFAULT_MIN_WORK);

/// Default parallelism threshold: roughly the work of one 2^12-point NTT
/// channel — below this, thread-spawn latency dominates any speedup.
pub const DEFAULT_MIN_WORK: u64 = 1 << 15;

/// Kernel families with distinct thread-handoff break-even points.
///
/// A single global threshold cannot fit both an NTT (≈ log2(n) multiplies
/// per element, compute-bound) and an element-wise add (one add per
/// element, memory-bound): at the same *total work* the add finishes so
/// fast that spawn latency eats the speedup — the sub-1.0 parallel rows the
/// kernel bench used to report. Each class therefore carries its own
/// default minimum work; [`set_min_work`] with a non-default value still
/// overrides every class at once (the knob tests and the bench's
/// forced-parallel mode rely on that).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkClass {
    /// Per-channel NTT transforms: compute-dense, parallelizes early.
    Ntt,
    /// Base-conversion dot products (`Bconv`): multiply-accumulate chains,
    /// moderate density.
    Bconv,
    /// Element-wise passes (add/sub/neg/pointwise-mul, scaling):
    /// memory-bound, needs a large region before threads pay off.
    Elementwise,
}

impl WorkClass {
    /// The class's default minimum total work (element-operations) before
    /// a region goes threaded.
    pub const fn default_min_work(self) -> u64 {
        match self {
            WorkClass::Ntt => DEFAULT_MIN_WORK,
            WorkClass::Bconv => 1 << 17,
            WorkClass::Elementwise => 1 << 19,
        }
    }
}

/// The effective threshold for one work class: the class default, unless
/// [`set_min_work`] installed an explicit global override (any value other
/// than [`DEFAULT_MIN_WORK`]), which wins for every class — `0` forces the
/// threaded path everywhere, `u64::MAX` forces inline everywhere.
pub fn min_work_for(class: WorkClass) -> u64 {
    let global = MIN_WORK.load(Ordering::Relaxed);
    if global != DEFAULT_MIN_WORK {
        return global;
    }
    class.default_min_work()
}

/// Whether the crate was built with the `parallel` feature.
#[inline]
pub fn parallelism_compiled() -> bool {
    cfg!(feature = "parallel")
}

/// Caps worker threads per parallel region; `0` restores auto (one per
/// available core). `1` forces sequential execution — the `bench_kernels`
/// binary uses this to record the sequential baseline in the same process.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The auto thread budget, resolved once per process: the
/// `ALCHEMIST_NUM_THREADS` environment override if set, else one thread
/// per available core. Cached because `max_threads` sits on every kernel's
/// dispatch path and the environment / affinity lookups are syscalls.
fn auto_threads() -> usize {
    static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AUTO.get_or_init(|| {
        if let Ok(v) = std::env::var("ALCHEMIST_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// The effective thread budget: the [`set_max_threads`] cap, else
/// `ALCHEMIST_NUM_THREADS` from the environment, else one per available
/// core. Always ≥ 1; exactly 1 when the `parallel` feature is off.
pub fn max_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    let cap = MAX_THREADS.load(Ordering::Relaxed);
    if cap != 0 {
        return cap.max(1);
    }
    auto_threads()
}

/// Sets the adaptive threshold: total element-operations below which a
/// parallel region runs inline. Tests set `0` to force the threaded path at
/// toy sizes; [`DEFAULT_MIN_WORK`] restores the default.
pub fn set_min_work(work: u64) {
    MIN_WORK.store(work, Ordering::Relaxed);
}

/// The current adaptive threshold (see [`set_min_work`]).
pub fn min_work() -> u64 {
    MIN_WORK.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Per-worker profiling
//
// The paper's headline metric is *utilization* (Fig. 7): how evenly the 128
// computing units share the channel-partitioned work. The software mirror is
// this registry: when enabled, every parallel region records each worker's
// busy time, chunk count, and item count into fixed atomic slots (worker `w`
// always processes the `w`-th contiguous chunk, so slot indices are stable
// across regions), plus the region count and summed region wall time on the
// caller side. Idle time per worker is `wall − busy`; the load-imbalance
// factor is `max(busy) / mean(busy)` — 1.0 is a perfectly balanced schedule.
//
// Disabled cost is one relaxed atomic load per region (not per item).
// ---------------------------------------------------------------------------

/// Upper bound on tracked worker slots; workers beyond it fold into the
/// last slot (no real host spawns that many).
const MAX_PROFILED_WORKERS: usize = 256;

static PROFILING: AtomicBool = AtomicBool::new(false);
static BUSY_NS: [AtomicU64; MAX_PROFILED_WORKERS] =
    [const { AtomicU64::new(0) }; MAX_PROFILED_WORKERS];
static CHUNKS: [AtomicU64; MAX_PROFILED_WORKERS] =
    [const { AtomicU64::new(0) }; MAX_PROFILED_WORKERS];
static ITEMS: [AtomicU64; MAX_PROFILED_WORKERS] =
    [const { AtomicU64::new(0) }; MAX_PROFILED_WORKERS];
static REGIONS: AtomicU64 = AtomicU64::new(0);
static REGION_WALL_NS: AtomicU64 = AtomicU64::new(0);

/// Turns per-worker profiling on or off (process-global). Off by default;
/// `bench_kernels --profile` and tests toggle it around the region of
/// interest.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Whether per-worker profiling is currently recording.
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Clears all accumulated profiling state.
pub fn reset_profile() {
    for w in 0..MAX_PROFILED_WORKERS {
        BUSY_NS[w].store(0, Ordering::Relaxed);
        CHUNKS[w].store(0, Ordering::Relaxed);
        ITEMS[w].store(0, Ordering::Relaxed);
    }
    REGIONS.store(0, Ordering::Relaxed);
    REGION_WALL_NS.store(0, Ordering::Relaxed);
}

#[inline]
fn record_chunk(worker: usize, busy_ns: u64, items: usize) {
    let w = worker.min(MAX_PROFILED_WORKERS - 1);
    BUSY_NS[w].fetch_add(busy_ns, Ordering::Relaxed);
    CHUNKS[w].fetch_add(1, Ordering::Relaxed);
    ITEMS[w].fetch_add(items as u64, Ordering::Relaxed);
}

/// Accumulated activity of one worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker slot index (0 = the caller thread / first spawned worker).
    pub worker: usize,
    /// Total time spent executing chunk bodies.
    pub busy_ns: u64,
    /// Number of chunks (one per region the worker participated in).
    pub chunks: u64,
    /// Total items processed.
    pub items: u64,
}

/// A snapshot of the profiling registry (see [`profile_snapshot`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParProfile {
    /// Active worker slots, in slot order. Inline (single-threaded) regions
    /// account to worker 0.
    pub workers: Vec<WorkerProfile>,
    /// Number of profiled parallel regions.
    pub regions: u64,
    /// Summed wall time of all profiled regions, measured on the caller.
    pub wall_ns: u64,
}

impl ParProfile {
    /// Load-imbalance factor: `max(busy) / mean(busy)` across active
    /// workers. 1.0 is perfectly balanced; `k` means the slowest worker had
    /// `k×` the average load. 1.0 when fewer than two workers were active.
    pub fn imbalance(&self) -> f64 {
        if self.workers.len() < 2 {
            return 1.0;
        }
        let max = self.workers.iter().map(|w| w.busy_ns).max().unwrap_or(0);
        let sum: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        if sum == 0 {
            return 1.0;
        }
        max as f64 * self.workers.len() as f64 / sum as f64
    }

    /// Idle time of one worker: profiled wall time it did not spend busy.
    pub fn idle_ns(&self, w: &WorkerProfile) -> u64 {
        self.wall_ns.saturating_sub(w.busy_ns)
    }

    /// Mean busy time across active workers (0 when none).
    pub fn mean_busy_ns(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.busy_ns).sum::<u64>() as f64 / self.workers.len() as f64
    }
}

/// Copies the current profiling registry: every worker slot that recorded
/// any activity, plus region totals. Cheap; safe to call while profiling
/// is still enabled (values are relaxed-atomic reads).
pub fn profile_snapshot() -> ParProfile {
    let workers = (0..MAX_PROFILED_WORKERS)
        .filter_map(|w| {
            let chunks = CHUNKS[w].load(Ordering::Relaxed);
            if chunks == 0 {
                return None;
            }
            Some(WorkerProfile {
                worker: w,
                busy_ns: BUSY_NS[w].load(Ordering::Relaxed),
                chunks,
                items: ITEMS[w].load(Ordering::Relaxed),
            })
        })
        .collect();
    ParProfile {
        workers,
        regions: REGIONS.load(Ordering::Relaxed),
        wall_ns: REGION_WALL_NS.load(Ordering::Relaxed),
    }
}

/// Number of worker threads a region of `items` items × `work_per_item`
/// element-operations of the given class would use (1 = run inline).
fn plan_threads(items: usize, work_per_item: u64, class: WorkClass) -> usize {
    if items < 2 {
        return 1;
    }
    let budget = max_threads();
    if budget < 2 {
        return 1;
    }
    let total = work_per_item.saturating_mul(items as u64);
    if total < min_work_for(class) {
        return 1;
    }
    budget.min(items)
}

/// Runs `f(index, &mut item)` for every item, splitting the slice into
/// contiguous per-thread chunks when the total work clears the adaptive
/// threshold. `work_per_item` is the estimated element-operations per item
/// (e.g. `n` for an element-wise pass, `n·log2(n)` for an NTT).
///
/// # Errors
///
/// A panic inside `f` (or an armed [`inject_worker_panic`] hook) is caught
/// at the chunk boundary and returned as [`ParError`]; the other chunks
/// still run to completion and the process keeps working. On `Err` the
/// contents of `items` are unspecified — treat the region's output as
/// poisoned.
pub fn par_iter_mut<T, F>(items: &mut [T], work_per_item: u64, f: F) -> Result<(), ParError>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    par_iter_mut_in(WorkClass::Ntt, items, work_per_item, f)
}

/// [`par_iter_mut`] with an explicit [`WorkClass`] selecting the adaptive
/// threshold — memory-bound element-wise regions need far more total work
/// than an NTT before threads pay off.
///
/// # Errors
///
/// Returns [`ParError`] when a chunk panics (see [`par_iter_mut`]).
pub fn par_iter_mut_in<T, F>(
    class: WorkClass,
    items: &mut [T],
    work_per_item: u64,
    f: F,
) -> Result<(), ParError>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = plan_threads(items.len(), work_per_item, class);
    let profiling = PROFILING.load(Ordering::Relaxed);
    if threads <= 1 {
        if profiling && !items.is_empty() {
            // Inline regions account to worker slot 0 so sequential
            // baselines and single-core hosts still report utilization.
            let t0 = Instant::now();
            let len = items.len();
            let res = run_contained(0, 0, || {
                for (i, item) in items.iter_mut().enumerate() {
                    f(i, item);
                }
            });
            let ns = t0.elapsed().as_nanos() as u64;
            record_chunk(0, ns, len);
            REGIONS.fetch_add(1, Ordering::Relaxed);
            REGION_WALL_NS.fetch_add(ns, Ordering::Relaxed);
            return res;
        }
        return run_contained(0, 0, || {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
        });
    }
    let chunk = items.len().div_ceil(threads);
    let region_start = profiling.then(Instant::now);
    let first_err: Mutex<Option<ParError>> = Mutex::new(None);
    // Worker heap traffic is charged back to the caller thread so the
    // parallel path reports the same span-attributed allocations as the
    // sequential one; the spawn scaffolding itself (thread stacks, join
    // handles) is telemetry-exempt on the caller — it is backend overhead,
    // not kernel work.
    let region_allocs = AtomicU64::new(0);
    let region_alloc_bytes = AtomicU64::new(0);
    {
        let _exempt = telemetry::alloc::exempt_scope();
        std::thread::scope(|scope| {
            let f = &f;
            let first_err = &first_err;
            let region_allocs = &region_allocs;
            let region_alloc_bytes = &region_alloc_bytes;
            for (ci, slice) in items.chunks_mut(chunk).enumerate() {
                let base = ci * chunk;
                scope.spawn(move || {
                    let alloc_base = telemetry::alloc::thread_stats();
                    let t0 = profiling.then(Instant::now);
                    let len = slice.len();
                    let res = run_contained(ci, ci, || {
                        for (k, item) in slice.iter_mut().enumerate() {
                            f(base + k, item);
                        }
                    });
                    if let Some(t0) = t0 {
                        record_chunk(ci, t0.elapsed().as_nanos() as u64, len);
                    }
                    let d = telemetry::alloc::thread_stats().since(alloc_base);
                    if d.allocs != 0 || d.bytes != 0 {
                        region_allocs.fetch_add(d.allocs, Ordering::Relaxed);
                        region_alloc_bytes.fetch_add(d.bytes, Ordering::Relaxed);
                    }
                    if let Err(e) = res {
                        store_error(first_err, e);
                    }
                });
            }
        });
    }
    telemetry::alloc::charge_current_thread(
        region_allocs.load(Ordering::Relaxed),
        region_alloc_bytes.load(Ordering::Relaxed),
    );
    if let Some(t0) = region_start {
        REGIONS.fetch_add(1, Ordering::Relaxed);
        REGION_WALL_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    match first_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Parallel map over a shared slice: returns `f(index, &item)` for every
/// item, in order. Built on [`par_iter_mut`] over the output buffer, so the
/// same adaptive threshold and panic containment apply.
///
/// # Errors
///
/// Returns [`ParError`] when a chunk panics (see [`par_iter_mut`]).
pub fn par_map<T, U, F>(items: &[T], work_per_item: u64, f: F) -> Result<Vec<U>, ParError>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_in(WorkClass::Ntt, items, work_per_item, f)
}

/// [`par_map`] with an explicit [`WorkClass`] (see [`par_iter_mut_in`]).
///
/// # Errors
///
/// Returns [`ParError`] when a chunk panics (see [`par_iter_mut`]).
pub fn par_map_in<T, U, F>(
    class: WorkClass,
    items: &[T],
    work_per_item: u64,
    f: F,
) -> Result<Vec<U>, ParError>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    par_iter_mut_in(class, &mut out, work_per_item, |i, slot| {
        *slot = Some(f(i, &items[i]));
    })?;
    Ok(out.into_iter().map(|v| v.expect("par_map fills every slot")).collect())
}

/// Runs `f(i)` for `i` in `0..count` with the same chunked dispatch as
/// [`par_iter_mut`], for loops whose state is not a `&mut` slice (each
/// iteration must touch disjoint data by construction).
///
/// # Errors
///
/// Returns [`ParError`] when a chunk panics (see [`par_iter_mut`]).
pub fn par_for_each<F>(count: usize, work_per_item: u64, f: F) -> Result<(), ParError>
where
    F: Fn(usize) + Sync,
{
    let mut indices: Vec<usize> = (0..count).collect();
    par_iter_mut(&mut indices, work_per_item, |_, &mut i| f(i))
}

/// Runs two independent closures, on separate threads when both sides clear
/// half the adaptive threshold. Returns both results. Side `a` runs on the
/// caller thread as chunk 0, side `b` as chunk 1.
///
/// # Errors
///
/// A panic on either side is contained and surfaced as [`ParError`]; when
/// both sides panic the lower chunk index (side `a`) wins.
pub fn join<A, B, RA, RB>(work_a: u64, work_b: u64, a: A, b: B) -> Result<(RA, RB), ParError>
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if max_threads() < 2 || work_a.saturating_add(work_b) < min_work() {
        let ra = run_contained(0, 0, a)?;
        let rb = run_contained(0, 1, b)?;
        return Ok((ra, rb));
    }
    // Same charge-back scheme as `par_iter_mut_in`: side b's heap traffic
    // lands on the caller, the spawn/join scaffolding is exempt. Side a
    // runs on the caller thread between the two exempt windows, so its
    // allocations attribute normally.
    let side_b = AtomicU64::new(0);
    let side_b_bytes = AtomicU64::new(0);
    let (ra, rb) = std::thread::scope(|scope| {
        let hb = {
            let _exempt = telemetry::alloc::exempt_scope();
            scope.spawn(|| {
                let alloc_base = telemetry::alloc::thread_stats();
                let r = run_contained(1, 1, b);
                let d = telemetry::alloc::thread_stats().since(alloc_base);
                side_b.store(d.allocs, Ordering::Relaxed);
                side_b_bytes.store(d.bytes, Ordering::Relaxed);
                r
            })
        };
        let ra = run_contained(0, 0, a);
        let rb = {
            let _exempt = telemetry::alloc::exempt_scope();
            hb.join().unwrap_or_else(|payload| {
                // `run_contained` already caught the body; reaching here means
                // the containment wrapper itself panicked, which we still
                // refuse to propagate as an unwind.
                Err(ParError { worker: 1, chunk: 1, payload: payload_string(payload) })
            })
        };
        (ra, rb)
    });
    telemetry::alloc::charge_current_thread(
        side_b.load(Ordering::Relaxed),
        side_b_bytes.load(Ordering::Relaxed),
    );
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => Ok((ra, rb)),
        (Err(e), _) => Err(e),
        (_, Err(e)) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global knobs.
    pub(crate) fn knob_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn sequential_below_threshold() {
        let _g = knob_guard();
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        let mut v = vec![0u64; 8];
        par_iter_mut(&mut v, 1, |i, x| *x = i as u64 * 2).unwrap();
        assert_eq!(v, (0..8).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn forced_parallel_matches_sequential() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(4);
        let mut v = vec![0u64; 1027];
        par_iter_mut(&mut v, 1, |i, x| *x = (i as u64).wrapping_mul(0x9e3779b97f4a7c15)).unwrap();
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        let expect: Vec<u64> =
            (0..1027).map(|i| (i as u64).wrapping_mul(0x9e3779b97f4a7c15)).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn par_map_preserves_order() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(3);
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(&items, 1, |i, &x| (i as u32) + x).unwrap();
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        assert_eq!(out, (0..100).map(|i| 2 * i).collect::<Vec<u32>>());
    }

    #[test]
    fn join_returns_both() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(2);
        let (a, b) = join(1 << 20, 1 << 20, || 1 + 1, || "x".repeat(3)).unwrap();
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        assert_eq!((a, b.as_str()), (2, "xxx"));
    }

    #[test]
    fn max_threads_is_at_least_one() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn work_class_thresholds_and_global_override() {
        let _g = knob_guard();
        set_min_work(DEFAULT_MIN_WORK);
        assert_eq!(min_work_for(WorkClass::Ntt), DEFAULT_MIN_WORK);
        assert_eq!(min_work_for(WorkClass::Bconv), 1 << 17);
        assert_eq!(min_work_for(WorkClass::Elementwise), 1 << 19);
        // An explicit override (the test/bench knob) wins for every class.
        set_min_work(0);
        assert_eq!(min_work_for(WorkClass::Elementwise), 0);
        set_min_work(u64::MAX);
        assert_eq!(min_work_for(WorkClass::Bconv), u64::MAX);
        set_min_work(DEFAULT_MIN_WORK);
    }

    #[test]
    fn elementwise_class_stays_inline_where_ntt_class_threads() {
        let _g = knob_guard();
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(4);
        // Work sits between the Ntt (2^15) and Elementwise (2^19) breaks.
        let items = 16usize;
        let per_item = 1u64 << 12; // total 2^16
        assert_eq!(plan_threads(items, per_item, WorkClass::Ntt), 4);
        assert_eq!(plan_threads(items, per_item, WorkClass::Elementwise), 1);
        set_max_threads(0);
    }

    /// Silences the default panic hook around a closure expected to contain
    /// panics, so intentional faults don't spam test output.
    pub(crate) fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    #[test]
    #[cfg(feature = "parallel")] // chunk indices require real workers
    fn organic_panic_is_contained_and_drains_other_chunks() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(4);
        let processed = AtomicU64::new(0);
        let mut v = vec![0u64; 400]; // 4 chunks of 100
        let err = quiet_panics(|| {
            par_iter_mut(&mut v, 1, |i, x| {
                if i == 250 {
                    panic!("boom at {i}");
                }
                processed.fetch_add(1, Ordering::Relaxed);
                *x = i as u64;
            })
            .unwrap_err()
        });
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        assert_eq!(err.chunk, 2, "item 250 lives in chunk 2");
        assert_eq!(err.worker, 2);
        assert!(err.payload.contains("boom at 250"), "payload: {}", err.payload);
        // Every chunk other than the poisoned one ran to completion.
        assert!(
            processed.load(Ordering::Relaxed) >= 300,
            "non-panicked chunks must drain, got {}",
            processed.load(Ordering::Relaxed)
        );
        // The region after the fault is healthy again.
        let mut w = vec![0u64; 64];
        par_iter_mut(&mut w, 1, |i, x| *x = i as u64 + 1).unwrap();
        assert_eq!(w[63], 64);
    }

    #[test]
    #[cfg(feature = "parallel")] // a sequential build only ever runs chunk 0
    fn injected_panic_hits_requested_chunk_then_disarms() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(4);
        inject_worker_panic(1);
        let mut v = vec![0u64; 400];
        let err = quiet_panics(|| par_iter_mut(&mut v, 1, |i, x| *x = i as u64).unwrap_err());
        assert_eq!((err.worker, err.chunk), (1, 1));
        assert_eq!(err.payload, INJECTED_PANIC_PAYLOAD);
        assert!(!clear_injected_panic(), "hook must one-shot disarm itself");
        // Same region re-run succeeds now that the hook is spent.
        par_iter_mut(&mut v, 1, |i, x| *x = i as u64).unwrap();
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        assert_eq!(v[399], 399);
    }

    #[test]
    fn injected_panic_contained_on_inline_path() {
        let _g = knob_guard();
        set_min_work(u64::MAX); // force inline
        inject_worker_panic(0);
        let mut v = vec![0u64; 16];
        let err = quiet_panics(|| par_iter_mut(&mut v, 1, |i, x| *x = i as u64).unwrap_err());
        set_min_work(DEFAULT_MIN_WORK);
        assert_eq!((err.worker, err.chunk), (0, 0));
        assert_eq!(err.payload, INJECTED_PANIC_PAYLOAD);
    }

    #[test]
    fn unfired_injection_is_reported_by_clear() {
        let _g = knob_guard();
        inject_worker_panic(77); // no region runs a chunk 77 here
        let mut v = vec![0u64; 4];
        par_iter_mut(&mut v, 0, |i, x| *x = i as u64).unwrap();
        assert!(clear_injected_panic(), "hook should still be armed");
    }

    #[test]
    fn join_contains_panics_on_both_sides() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(2);
        let err = quiet_panics(|| {
            join(1 << 20, 1 << 20, || 7, || -> u32 { panic!("side b died") }).unwrap_err()
        });
        // Side b is chunk 1 either way; only the worker differs between the
        // threaded and the sequential-fallback build.
        assert_eq!(err.chunk, 1);
        assert_eq!(err.worker, if parallelism_compiled() { 1 } else { 0 });
        assert!(err.payload.contains("side b died"));
        let err = quiet_panics(|| {
            join(1 << 20, 1 << 20, || -> u32 { panic!("side a died") }, || 7).unwrap_err()
        });
        assert_eq!((err.worker, err.chunk), (0, 0));
        // Sequential fallback contains too.
        set_max_threads(1);
        let err =
            quiet_panics(|| join(1, 1, || 7, || -> u32 { panic!("seq b died") }).unwrap_err());
        assert_eq!(err.chunk, 1);
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        let (a, b) = join(1, 1, || 1, || 2).unwrap();
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn par_map_surfaces_contained_error() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(3);
        let items: Vec<u32> = (0..90).collect();
        let err = quiet_panics(|| {
            par_map(&items, 1, |i, &x| if i == 45 { panic!("map {i}") } else { x }).unwrap_err()
        });
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        let want = if parallelism_compiled() { 1 } else { 0 };
        assert_eq!(err.chunk, want, "item 45 lives in chunk 1 of 3×30 (0 inline)");
    }

    #[test]
    #[cfg(feature = "parallel")] // spawns real workers; sequential builds cap at 1
    fn profiling_captures_per_worker_activity() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(4);
        reset_profile();
        set_profiling(true);
        let mut v = vec![0u64; 400];
        par_iter_mut(&mut v, 1, |i, x| *x = (i as u64).wrapping_mul(3)).unwrap();
        set_profiling(false);
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);

        let prof = profile_snapshot();
        assert_eq!(prof.regions, 1);
        assert_eq!(prof.workers.len(), 4, "one slot per spawned worker");
        assert_eq!(prof.workers.iter().map(|w| w.items).sum::<u64>(), 400);
        for w in &prof.workers {
            assert_eq!(w.chunks, 1);
            assert_eq!(w.items, 100);
            assert!(prof.idle_ns(w) <= prof.wall_ns);
        }
        assert!(prof.imbalance() >= 1.0);
        // The result is untouched by profiling.
        assert_eq!(v[399], 399 * 3);
    }

    #[test]
    fn inline_regions_account_to_worker_zero() {
        let _g = knob_guard();
        set_min_work(u64::MAX); // force the inline path
        reset_profile();
        set_profiling(true);
        let mut v = vec![0u64; 64];
        par_iter_mut(&mut v, 1, |i, x| *x = i as u64).unwrap();
        par_iter_mut(&mut v, 1, |i, x| *x += i as u64).unwrap();
        set_profiling(false);
        set_min_work(DEFAULT_MIN_WORK);

        let prof = profile_snapshot();
        assert_eq!(prof.regions, 2);
        assert_eq!(prof.workers.len(), 1);
        assert_eq!(prof.workers[0].worker, 0);
        assert_eq!(prof.workers[0].chunks, 2);
        assert_eq!(prof.workers[0].items, 128);
        assert!((prof.imbalance() - 1.0).abs() < f64::EPSILON);
        assert_eq!(v[10], 20);
    }

    #[test]
    fn reset_clears_profile_and_disabled_records_nothing() {
        let _g = knob_guard();
        set_min_work(0);
        set_max_threads(2);
        reset_profile();
        assert!(!profiling_enabled());
        let mut v = vec![0u64; 100];
        par_iter_mut(&mut v, 1, |i, x| *x = i as u64).unwrap();
        set_min_work(DEFAULT_MIN_WORK);
        set_max_threads(0);
        let prof = profile_snapshot();
        assert!(prof.workers.is_empty(), "profiling off must record nothing");
        assert_eq!(prof.regions, 0);
        assert_eq!(prof.imbalance(), 1.0);
    }
}
