//! Always-on correctness contracts (the `strict-checks` feature).
//!
//! Every fast kernel in this crate leans on *canonical-form* preconditions:
//! [`crate::Modulus::add`]/[`crate::Modulus::sub`] assume operands below
//! `q`, [`crate::Modulus::mul_shoup`] assumes `a < q`, the RNS CRT paths
//! assume the basis product is exactly divisible by each channel modulus.
//! Historically these were `debug_assert!`s — which vanish in precisely the
//! `--release` builds the tier-1 verify and the bench regression gate run,
//! so a canonical-form violation silently corrupted ciphertexts instead of
//! failing loudly.
//!
//! [`strict_assert!`]/[`strict_assert_eq!`] close that gap: with the
//! default-on `strict-checks` cargo feature they compile to plain
//! `assert!` in every profile; with the feature disabled they degrade to
//! `debug_assert!` (for callers that need the last few percent and accept
//! the risk). Hot *inner-loop* invariants (radix-block spans, lazy-butterfly
//! bounds) intentionally stay `debug_assert!` — the strict macros are for
//! API boundaries, where one branch per call is noise.
//!
//! The macros test the feature through [`strict_checks_enabled`], a `const
//! fn` compiled with *this* crate's features, so downstream crates using
//! the macros inherit fhe-math's setting (toggled by forwarding their own
//! `strict-checks` feature) rather than silently depending on their own
//! feature list.

/// `true` when `fhe-math` was compiled with the `strict-checks` feature
/// (the default); the strict macros then assert in release builds too.
#[inline(always)]
#[must_use]
pub const fn strict_checks_enabled() -> bool {
    cfg!(feature = "strict-checks")
}

/// Like `assert!`, but active in release builds when the `strict-checks`
/// feature is enabled (the default) and a `debug_assert!` otherwise.
///
/// Use at API boundaries that guard canonical-form contracts; keep raw
/// `debug_assert!` for per-element inner-loop invariants.
#[macro_export]
macro_rules! strict_assert {
    ($($arg:tt)*) => {
        if $crate::strict_checks_enabled() {
            assert!($($arg)*);
        } else {
            debug_assert!($($arg)*);
        }
    };
}

/// Like `assert_eq!`, but active in release builds when the
/// `strict-checks` feature is enabled (the default) and a
/// `debug_assert_eq!` otherwise.
#[macro_export]
macro_rules! strict_assert_eq {
    ($($arg:tt)*) => {
        if $crate::strict_checks_enabled() {
            assert_eq!($($arg)*);
        } else {
            debug_assert_eq!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_contracts_are_silent() {
        strict_assert!(1 + 1 == 2, "arithmetic works");
        strict_assert_eq!(2 + 2, 4);
    }

    #[test]
    #[cfg(feature = "strict-checks")]
    #[should_panic(expected = "contract violated")]
    fn failing_contract_panics_when_strict() {
        strict_assert!(false, "contract violated");
    }
}
