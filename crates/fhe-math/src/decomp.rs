//! Gadget / digit decomposition.
//!
//! Both FHE families decompose large values into small digits before
//! multiplying with key material, bounding noise growth:
//!
//! * TFHE decomposes torus elements into `l_b` balanced base-`2^w` digits
//!   ([`SignedDigitDecomposer`]) before the TRGSW external product — this is
//!   the `lb = 2, 3, 4` axis of the paper's Meta-OP parameter space.
//! * CKKS hybrid key switching groups the RNS channels into `dnum` digits
//!   ([`Gadget`]) that are individually modup-ed and multiplied with
//!   evaluation keys (the paper's `DecompPolyMult` with `n = dnum`).

use crate::MathError;

/// Balanced signed base-`2^base_log` decomposition of 64-bit torus values.
///
/// A value `t` is approximated as `Σ_{j=0}^{l-1} d_j · 2^{64-(j+1)·w}` with
/// digits `d_j ∈ [-2^{w-1}, 2^{w-1})`; the approximation error is at most
/// `2^{63 - l·w}` in absolute value.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_math::MathError> {
/// use fhe_math::SignedDigitDecomposer;
/// let d = SignedDigitDecomposer::new(8, 4)?;
/// let t = 0x1234_5678_9abc_def0u64;
/// let digits = d.decompose(t);
/// let approx = d.recompose(&digits);
/// assert!(t.wrapping_sub(approx).min(approx.wrapping_sub(t)) <= 1 << 31);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedDigitDecomposer {
    base_log: u32,
    levels: usize,
}

impl SignedDigitDecomposer {
    /// Creates a decomposer with digit width `base_log` bits and `levels`
    /// digits.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] unless
    /// `1 ≤ base_log·levels ≤ 64` and `base_log ≤ 32`.
    pub fn new(base_log: u32, levels: usize) -> Result<Self, MathError> {
        let total = base_log as usize * levels;
        if base_log == 0 || base_log > 32 || levels == 0 || total > 64 {
            return Err(MathError::InvalidParameter {
                detail: format!(
                    "signed decomposition base_log={base_log} levels={levels} out of range"
                ),
            });
        }
        Ok(SignedDigitDecomposer { base_log, levels })
    }

    /// Digit width in bits.
    #[inline]
    pub fn base_log(&self) -> u32 {
        self.base_log
    }

    /// Number of digits.
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Decomposes a torus value into balanced digits, most significant
    /// first (`digits[0]` scales `2^{64-w}`).
    pub fn decompose(&self, t: u64) -> Vec<i64> {
        let w = self.base_log;
        let l = self.levels;
        let total = w * l as u32;
        // Round to the closest multiple of 2^(64-total).
        let t_hat = if total == 64 {
            t
        } else {
            let shift = 64 - total;
            (t.wrapping_add(1u64 << (shift - 1))) >> shift
        };
        let base = 1u64 << w;
        let half = base >> 1;
        let mask = base - 1;
        let mut out = vec![0i64; l];
        let mut carry = 0u64;
        // Least-significant digit first: digit j scales 2^{(l-1-j)*w} of t_hat.
        for j in (0..l).rev() {
            let raw = ((t_hat >> ((l - 1 - j) as u32 * w)) & mask) + carry;
            if raw >= half {
                out[j] = raw as i64 - base as i64;
                carry = 1;
            } else {
                out[j] = raw as i64;
                carry = 0;
            }
        }
        // A final carry adds 2^64 ≡ 0 to the recomposition; drop it.
        out
    }

    /// Recomposes digits back into a torus value (wrapping arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() != self.levels()`.
    pub fn recompose(&self, digits: &[i64]) -> u64 {
        assert_eq!(digits.len(), self.levels);
        let mut acc = 0u64;
        for (j, &d) in digits.iter().enumerate() {
            let scale = 64 - (j as u32 + 1) * self.base_log;
            acc = acc.wrapping_add((d as u64).wrapping_shl(scale));
        }
        acc
    }

    /// Worst-case recomposition error `2^{63 - l·w}` (0 when `l·w = 64`).
    #[inline]
    pub fn max_error(&self) -> u64 {
        let total = self.base_log * self.levels as u32;
        if total >= 64 {
            0
        } else {
            1u64 << (63 - total)
        }
    }

    /// Decomposes every coefficient of a torus polynomial, returning one
    /// signed polynomial per level (level-major layout).
    pub fn decompose_poly(&self, poly: &[u64]) -> Vec<Vec<i64>> {
        let mut out = vec![vec![0i64; poly.len()]; self.levels];
        for (i, &t) in poly.iter().enumerate() {
            for (j, d) in self.decompose(t).into_iter().enumerate() {
                out[j][i] = d;
            }
        }
        out
    }
}

/// CKKS hybrid key-switching digit grouping: splits `num_channels` RNS
/// channels into `dnum` contiguous digits of `alpha = ceil(len/dnum)`
/// channels each.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_math::MathError> {
/// use fhe_math::Gadget;
/// let g = Gadget::new(3)?;
/// let digits = g.split(7);
/// assert_eq!(digits, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gadget {
    dnum: usize,
}

impl Gadget {
    /// Creates a gadget with `dnum` digits.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if `dnum == 0`.
    pub fn new(dnum: usize) -> Result<Self, MathError> {
        if dnum == 0 {
            return Err(MathError::InvalidParameter { detail: "dnum must be positive".into() });
        }
        Ok(Gadget { dnum })
    }

    /// The decomposition number.
    #[inline]
    pub fn dnum(&self) -> usize {
        self.dnum
    }

    /// Channels per full digit for a chain of `num_channels` channels.
    #[inline]
    pub fn alpha(&self, num_channels: usize) -> usize {
        num_channels.div_ceil(self.dnum)
    }

    /// Splits channel indices `0..num_channels` into at most `dnum`
    /// contiguous digit groups (the trailing digit may be shorter; digits
    /// beyond the available channels are omitted).
    pub fn split(&self, num_channels: usize) -> Vec<Vec<usize>> {
        let alpha = self.alpha(num_channels);
        (0..num_channels).collect::<Vec<_>>().chunks(alpha).map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_configs() {
        assert!(SignedDigitDecomposer::new(0, 3).is_err());
        assert!(SignedDigitDecomposer::new(33, 1).is_err());
        assert!(SignedDigitDecomposer::new(16, 5).is_err());
        assert!(Gadget::new(0).is_err());
    }

    #[test]
    fn digits_are_balanced() {
        let d = SignedDigitDecomposer::new(7, 3).unwrap();
        for t in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000, 0xdead_beef_0123_4567] {
            for &digit in &d.decompose(t) {
                assert!((-64..64).contains(&digit), "digit {digit} out of [-2^6, 2^6)");
            }
        }
    }

    #[test]
    fn recomposition_error_bounded() {
        let d = SignedDigitDecomposer::new(8, 4).unwrap();
        let bound = d.max_error();
        assert_eq!(bound, 1 << 31);
        let mut state = 0x12345u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let approx = d.recompose(&d.decompose(state));
            let err = state.wrapping_sub(approx).min(approx.wrapping_sub(state));
            assert!(err <= bound, "error {err} exceeds bound {bound} for {state}");
        }
    }

    #[test]
    fn full_width_is_exact() {
        let d = SignedDigitDecomposer::new(16, 4).unwrap();
        assert_eq!(d.max_error(), 0);
        for t in [0u64, 1, u64::MAX, 0xdead_beef_cafe_babe] {
            assert_eq!(d.recompose(&d.decompose(t)), t);
        }
    }

    #[test]
    fn poly_decomposition_layout() {
        let d = SignedDigitDecomposer::new(8, 2).unwrap();
        let poly = vec![0u64, 1 << 56, 3 << 55];
        let levels = d.decompose_poly(&poly);
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 3);
        // 1<<56 = 1 * 2^(64-8): top digit 1, bottom 0.
        assert_eq!(levels[0][1], 1);
        assert_eq!(levels[1][1], 0);
    }

    #[test]
    fn gadget_split_shapes() {
        let g = Gadget::new(4).unwrap();
        assert_eq!(g.alpha(8), 2);
        assert_eq!(g.split(8).len(), 4);
        assert_eq!(g.split(5), vec![vec![0, 1], vec![2, 3], vec![4]]);
        let g1 = Gadget::new(1).unwrap();
        assert_eq!(g1.split(3), vec![vec![0, 1, 2]]);
    }
}
