//! Allocation-freedom proofs for the kernel hot paths.
//!
//! The scratch pools and `*_into` entry points exist so steady-state FHE
//! evaluation never touches the allocator; these tests pin that contract
//! with the counting global allocator (`telemetry::alloc`). Each test
//! warms a kernel up (first calls may fill pools and lazy tables), then
//! runs it under [`assert_no_alloc`], which panics on any heap traffic
//! attributed to the calling thread — including worker-thread traffic,
//! which `fhe_math::par` charges back to the caller.
//!
//! When the `alloc-track` feature is off the assertions are vacuous (the
//! suite still exercises the kernels).

use std::sync::{Mutex, MutexGuard};

use fhe_math::{
    generate_ntt_primes, par, FourStepNtt, Modulus, NttTable, Poly, RnsBasis, RnsContext, RnsPoly,
};
use telemetry::alloc::{alloc_delta, assert_no_alloc};

/// Serializes tests in this binary: the thread-cap / threshold knobs are
/// process-global, and cross-thread allocator noise would blur the strict
/// zero assertions.
fn knob_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn sequential() {
    par::set_max_threads(1);
    par::set_min_work(u64::MAX);
}

fn forced_parallel() {
    par::set_max_threads(4);
    par::set_min_work(0);
}

fn restore_knobs() {
    par::set_max_threads(0);
    par::set_min_work(par::DEFAULT_MIN_WORK);
}

fn context(n: usize, channels: usize) -> (RnsContext, Vec<Modulus>) {
    let primes = generate_ntt_primes(50, n, channels).expect("primes");
    let moduli: Vec<Modulus> = primes.iter().map(|&q| Modulus::new(q).expect("prime")).collect();
    let ctx = RnsContext::new(n, RnsBasis::new(moduli.clone()).expect("basis")).expect("context");
    (ctx, moduli)
}

fn fill(n: usize, c: usize, salt: u64, m: Modulus) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (i ^ (c as u64) << 24 ^ salt).wrapping_mul(0x9e37_79b9_7f4a_7c15) % m.value())
        .collect()
}

fn rns_poly(n: usize, salt: u64, moduli: &[Modulus]) -> RnsPoly {
    let channels: Vec<Poly> = moduli
        .iter()
        .enumerate()
        .map(|(c, &m)| Poly::from_coeffs(fill(n, c, salt, m), m).expect("canonical"))
        .collect();
    RnsPoly::from_channels(channels).expect("rns poly")
}

/// NTT forward/inverse on a single channel: the flat path (n ≤ 4096)
/// transforms strictly in place — zero allocations even on a cold call,
/// and we assert it after one warm-up to also cover lazy SIMD dispatch.
#[test]
fn ntt_forward_inverse_allocation_free_sequential() {
    let _g = knob_guard();
    sequential();
    let n = 4096;
    let q = Modulus::new(generate_ntt_primes(50, n, 1).unwrap()[0]).unwrap();
    let table = NttTable::new(q, n).unwrap();
    let mut a = fill(n, 0, 7, q);
    table.forward(&mut a);
    table.inverse(&mut a);
    assert_no_alloc("ntt.forward", || table.forward(&mut a));
    assert_no_alloc("ntt.inverse", || table.inverse(&mut a));
    restore_knobs();
}

/// The blocked path (n ≥ 2^13) stages rows through the thread-local
/// scratch pool: allocation-free once the pool is warm.
#[test]
fn blocked_ntt_allocation_free_after_warmup_sequential() {
    let _g = knob_guard();
    sequential();
    let n = 8192;
    let q = Modulus::new(generate_ntt_primes(50, n, 1).unwrap()[0]).unwrap();
    let table = NttTable::new(q, n).unwrap();
    let mut a = fill(n, 0, 3, q);
    table.forward(&mut a);
    table.inverse(&mut a);
    assert_no_alloc("ntt.forward.blocked", || table.forward(&mut a));
    assert_no_alloc("ntt.inverse.blocked", || table.inverse(&mut a));
    restore_knobs();
}

/// Four-step NTT at n = 8192, sequential: column/row transforms work out
/// of the scratch pool, so the warmed-up transform allocates nothing.
#[test]
fn four_step_ntt_allocation_free_after_warmup() {
    let _g = knob_guard();
    sequential();
    let q = Modulus::new(generate_ntt_primes(50, 8192, 1).unwrap()[0]).unwrap();
    let ntt = FourStepNtt::new(q, 64, 128).unwrap();
    let mut a = fill(8192, 0, 11, q);
    ntt.forward(&mut a);
    ntt.inverse(&mut a);
    assert_no_alloc("four_step.forward", || ntt.forward(&mut a));
    assert_no_alloc("four_step.inverse", || ntt.inverse(&mut a));
    restore_knobs();
}

/// Multi-channel NTT via `RnsPoly::to_ntt`/`to_coeff` with the threaded
/// path forced: worker chunk bodies are allocation-free, the backend's
/// spawn scaffolding is telemetry-exempt, and worker deltas are charged
/// back to this thread — so the strict zero assertion covers both.
#[test]
fn parallel_ntt_round_trip_allocation_free() {
    let _g = knob_guard();
    forced_parallel();
    let n = 4096;
    let (ctx, moduli) = context(n, 6);
    let mut p = rns_poly(n, 1, &moduli);
    p.to_ntt(ctx.tables()).unwrap();
    p.to_coeff(ctx.tables()).unwrap();
    assert_no_alloc("par.rns.to_ntt", || p.to_ntt(ctx.tables()).unwrap());
    assert_no_alloc("par.rns.to_coeff", || p.to_coeff(ctx.tables()).unwrap());
    restore_knobs();
}

/// Element-wise RNS arithmetic mutates residues in place: strictly
/// allocation-free, sequential and parallel.
#[test]
fn elementwise_rns_ops_allocation_free_both_backends() {
    let _g = knob_guard();
    let n = 4096;
    let (ctx, moduli) = context(n, 6);
    let mut p = rns_poly(n, 1, &moduli);
    let mut q = rns_poly(n, 2, &moduli);
    p.to_ntt(ctx.tables()).unwrap();
    q.to_ntt(ctx.tables()).unwrap();
    for (label, setup) in [("seq", sequential as fn()), ("par", forced_parallel as fn())] {
        setup();
        let (p, q) = (&mut p, &q);
        // Warm-up pass per backend (the parallel one exercises spawn).
        p.add_assign(q).unwrap();
        assert_no_alloc(&format!("rns.add_assign.{label}"), || p.add_assign(q).unwrap());
        assert_no_alloc(&format!("rns.sub_assign.{label}"), || p.sub_assign(q).unwrap());
        assert_no_alloc(&format!("rns.neg_assign.{label}"), || p.neg_assign().unwrap());
        assert_no_alloc(&format!("rns.mul_pointwise_assign.{label}"), || {
            p.mul_pointwise_assign(q).unwrap()
        });
    }
    restore_knobs();
}

/// The keyswitch ladder (`modup_into`/`moddown_into`) rebuilds its Bconv
/// plan per call, so it is bounded rather than zero: steady-state calls
/// must allocate exactly as much as the previous call (no warm-up drift,
/// no leak-style growth) and stay under a coarse absolute cap.
#[test]
fn keyswitch_into_paths_have_bounded_steady_state_allocations() {
    let _g = knob_guard();
    sequential();
    let n = 4096;
    let (ctx, moduli) = context(n, 6);
    let q_idx: Vec<usize> = (0..4).collect();
    let p_idx: Vec<usize> = (4..6).collect();
    let poly = rns_poly(n, 5, &moduli);
    let q_channels: Vec<&[u64]> = q_idx.iter().map(|&i| poly.channel(i).coeffs()).collect();
    let p_channels: Vec<&[u64]> = p_idx.iter().map(|&i| poly.channel(i).coeffs()).collect();
    let mut up = vec![Vec::new(); p_idx.len()];
    let mut down = vec![Vec::new(); q_idx.len()];

    let run = |up: &mut Vec<Vec<u64>>, down: &mut Vec<Vec<u64>>| {
        ctx.modup_into(&q_channels, &q_idx, &p_idx, up).unwrap();
        ctx.moddown_into(&q_channels, &p_channels, &q_idx, &p_idx, down).unwrap();
    };
    // Two warm-up rounds: scratch pools and output buffers reach capacity.
    run(&mut up, &mut down);
    run(&mut up, &mut down);
    let ((), d1) = alloc_delta(|| run(&mut up, &mut down));
    let ((), d2) = alloc_delta(|| run(&mut up, &mut down));
    restore_knobs();
    if !telemetry::alloc::tracking_compiled() {
        return;
    }
    assert_eq!(
        d1.allocs, d2.allocs,
        "steady-state keyswitch allocation count must not drift: {d1:?} vs {d2:?}"
    );
    assert_eq!(d1.bytes, d2.bytes, "steady-state keyswitch bytes must not drift");
    assert!(d1.allocs < 20_000, "keyswitch alloc count blew its bound: {d1:?}");
}
