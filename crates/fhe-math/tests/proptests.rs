//! Property-based tests over the number-theoretic core: modular
//! arithmetic laws, NTT algebra, RNS/CRT consistency, decomposition error
//! bounds, and big-integer arithmetic against native wide types.

use fhe_math::{
    generate_ntt_primes, FourStepNtt, Modulus, NttTable, RnsBasis, RnsContext, RnsPoly,
    SignedDigitDecomposer, UBig,
};
use proptest::prelude::*;

fn modulus_36() -> Modulus {
    Modulus::new(generate_ntt_primes(36, 64, 1).unwrap()[0]).unwrap()
}

fn modulus_60() -> Modulus {
    Modulus::new(generate_ntt_primes(60, 64, 1).unwrap()[0]).unwrap()
}

proptest! {
    #[test]
    fn barrett_reduction_matches_u128_remainder(x in any::<u128>()) {
        for m in [modulus_36(), modulus_60()] {
            prop_assert_eq!(m.reduce_u128(x), (x % m.value() as u128) as u64);
        }
    }

    #[test]
    fn field_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let m = modulus_36();
        let (a, b, c) = (m.reduce(a), m.reduce(b), m.reduce(c));
        // Commutativity and associativity.
        prop_assert_eq!(m.add(a, b), m.add(b, a));
        prop_assert_eq!(m.mul(a, b), m.mul(b, a));
        prop_assert_eq!(m.add(m.add(a, b), c), m.add(a, m.add(b, c)));
        prop_assert_eq!(m.mul(m.mul(a, b), c), m.mul(a, m.mul(b, c)));
        // Distributivity.
        prop_assert_eq!(m.mul(a, m.add(b, c)), m.add(m.mul(a, b), m.mul(a, c)));
        // Additive inverse and subtraction consistency.
        prop_assert_eq!(m.add(a, m.neg(a)), 0);
        prop_assert_eq!(m.sub(a, b), m.add(a, m.neg(b)));
    }

    #[test]
    fn inverse_is_inverse(a in 1u64..u64::MAX) {
        let m = modulus_36();
        let a = m.reduce(a);
        prop_assume!(a != 0);
        let inv = m.inv(a).unwrap();
        prop_assert_eq!(m.mul(a, inv), 1);
    }

    #[test]
    fn shoup_equals_barrett(a in any::<u64>(), w in any::<u64>()) {
        let m = modulus_60();
        let (a, w) = (m.reduce(a), m.reduce(w));
        prop_assert_eq!(m.mul_shoup(a, m.shoup(w)), m.mul(a, w));
    }

    #[test]
    fn ntt_round_trip(coeffs in prop::collection::vec(any::<u64>(), 64)) {
        let m = modulus_36();
        let t = NttTable::new(m, 64).unwrap();
        let original: Vec<u64> = coeffs.iter().map(|&c| m.reduce(c)).collect();
        let mut a = original.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        prop_assert_eq!(a, original);
    }

    #[test]
    fn ntt_is_linear(
        xs in prop::collection::vec(any::<u64>(), 64),
        ys in prop::collection::vec(any::<u64>(), 64),
    ) {
        let m = modulus_36();
        let t = NttTable::new(m, 64).unwrap();
        let xs: Vec<u64> = xs.iter().map(|&c| m.reduce(c)).collect();
        let ys: Vec<u64> = ys.iter().map(|&c| m.reduce(c)).collect();
        let mut sum: Vec<u64> = xs.iter().zip(&ys).map(|(&x, &y)| m.add(x, y)).collect();
        t.forward(&mut sum);
        let mut fx = xs.clone();
        let mut fy = ys.clone();
        t.forward(&mut fx);
        t.forward(&mut fy);
        let pointwise: Vec<u64> = fx.iter().zip(&fy).map(|(&x, &y)| m.add(x, y)).collect();
        prop_assert_eq!(sum, pointwise);
    }

    #[test]
    fn four_step_agrees_with_flat_ntt_on_products(
        xs in prop::collection::vec(any::<u64>(), 64),
        ys in prop::collection::vec(any::<u64>(), 64),
    ) {
        let q = Modulus::new(generate_ntt_primes(36, 64, 1).unwrap()[0]).unwrap();
        let flat = NttTable::new(q, 64).unwrap();
        let four = FourStepNtt::new(q, 8, 8).unwrap();
        let xs: Vec<u64> = xs.iter().map(|&c| q.reduce(c)).collect();
        let ys: Vec<u64> = ys.iter().map(|&c| q.reduce(c)).collect();

        let product = |fwd: &dyn Fn(&mut Vec<u64>), inv: &dyn Fn(&mut Vec<u64>)| {
            let mut a = xs.clone();
            let mut b = ys.clone();
            fwd(&mut a);
            fwd(&mut b);
            let mut p: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.mul(x, y)).collect();
            inv(&mut p);
            p
        };
        let p1 = product(&|v| flat.forward(v), &|v| flat.inverse(v));
        let p2 = product(&|v| four.forward(v), &|v| four.inverse(v));
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn crt_round_trip(value in any::<u64>()) {
        let primes = generate_ntt_primes(30, 16, 3).unwrap();
        let moduli: Vec<Modulus> = primes.iter().map(|&q| Modulus::new(q).unwrap()).collect();
        let poly = RnsPoly::from_signed(&[value as i64 & i64::MAX], 16, &moduli);
        let expect = UBig::from_u64(value & i64::MAX as u64);
        prop_assert_eq!(poly.crt_coefficient(0), expect);
    }

    #[test]
    fn bconv_error_is_bounded_multiple_of_q(slot_value in any::<u64>()) {
        let primes = generate_ntt_primes(30, 8, 4).unwrap();
        let moduli: Vec<Modulus> = primes.iter().map(|&q| Modulus::new(q).unwrap()).collect();
        let ctx = RnsContext::new(8, RnsBasis::new(moduli).unwrap()).unwrap();
        let plan = ctx.bconv(&[0, 1], &[2, 3]).unwrap();
        let x = slot_value % (ctx.moduli()[0].value()); // small exact value
        let chans: Vec<Vec<u64>> =
            (0..2).map(|i| vec![x % ctx.moduli()[i].value(); 8]).collect();
        let refs: Vec<&[u64]> = chans.iter().map(|c| c.as_slice()).collect();
        let out = plan.apply(&refs).unwrap();
        let q_prod = UBig::product_of((0..2).map(|i| ctx.moduli()[i].value()));
        for (j, dj) in [2usize, 3].into_iter().enumerate() {
            let p = ctx.moduli()[dj];
            let got = out[j][0];
            let matched = (0..2u64).any(|u| {
                UBig::from_u64(x).add(&q_prod.mul_u64(u)).rem_u64(p.value()) == got
            });
            prop_assert!(matched, "Bconv slack exceeded (L-1)Q");
        }
    }

    #[test]
    fn signed_decomposition_error_bound(t in any::<u64>(), base_log in 4u32..16, levels in 2usize..4) {
        prop_assume!(base_log as usize * levels <= 64);
        let d = SignedDigitDecomposer::new(base_log, levels).unwrap();
        let digits = d.decompose(t);
        let half = 1i64 << (base_log - 1);
        for &digit in &digits {
            prop_assert!((-half..half).contains(&digit));
        }
        let approx = d.recompose(&digits);
        let err = t.wrapping_sub(approx).min(approx.wrapping_sub(t));
        prop_assert!(err <= d.max_error());
    }

    #[test]
    fn ubig_matches_u128_arithmetic(a in any::<u64>(), b in any::<u64>()) {
        let (ua, ub) = (UBig::from_u64(a), UBig::from_u64(b));
        prop_assert_eq!(ua.add(&ub), UBig::from_u128(a as u128 + b as u128));
        prop_assert_eq!(ua.mul(&ub), UBig::from_u128(a as u128 * b as u128));
        if b != 0 {
            let (q, r) = ua.divrem_u64(b);
            prop_assert_eq!(q, UBig::from_u64(a / b));
            prop_assert_eq!(r, a % b);
        }
    }

    #[test]
    fn ubig_rem_big_is_canonical(x in any::<u128>(), m in 2u64..u64::MAX) {
        let r = UBig::from_u128(x).rem_big(&UBig::from_u64(m));
        prop_assert_eq!(r.low_u128(), x % m as u128);
    }
}
