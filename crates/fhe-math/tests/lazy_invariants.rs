//! Property tests pinning the Harvey lazy-reduction value-range contract
//! at the modulus width limit.
//!
//! Two moduli matter at the boundary:
//!
//! * `q = 2^61 - 1` (Mersenne, exactly `MAX_MODULUS_BITS` wide, *not*
//!   NTT-friendly) — exercises the scalar lazy primitives where the
//!   `[0, 2q)` / `[0, 4q)` headroom above 61 bits is tightest;
//! * the largest 61-bit NTT-friendly prime — exercises the full lazy
//!   transforms (`forward_lazy` / `inverse_lazy`) with worst-case
//!   coefficients.

use fhe_math::{generate_ntt_primes, Modulus, NttTable};
use proptest::prelude::*;

/// 2^61 - 1: prime, exactly at the width limit.
const Q61: u64 = (1u64 << 61) - 1;

proptest! {
    /// `mul_shoup_lazy` emits `[0, 2q)` for ANY u64 multiplicand (the
    /// butterfly feeds it unreduced lazy values) and the residue is exact.
    #[test]
    fn shoup_lazy_output_below_2q_for_any_input(a in any::<u64>(), w in 0..Q61) {
        let q = Modulus::new(Q61).unwrap();
        let s = q.shoup(w);
        let r = q.mul_shoup_lazy(a, s);
        prop_assert!(r < 2 * Q61, "mul_shoup_lazy({a}, {w}) = {r} >= 2q");
        prop_assert_eq!(q.reduce_2q(r), q.mul(q.reduce(a), w));
    }

    /// The forward Cooley–Tukey lazy butterfly algebra: a `[0, 4q)` input
    /// conditionally subtracts `2q`, the twiddle product lands in
    /// `[0, 2q)`, and both outputs stay `< 4q` — the per-layer invariant
    /// the transform relies on at every stage (paper Table 2 headroom).
    #[test]
    fn forward_butterfly_stays_below_4q(
        u in 0..4 * Q61,
        x in any::<u64>(),
        w in 1..Q61,
    ) {
        let q = Modulus::new(Q61).unwrap();
        let s = q.shoup(w);
        let u1 = if u >= 2 * Q61 { u - 2 * Q61 } else { u };
        let v = q.mul_shoup_lazy(x, s);
        let (t0, t1) = (u1 + v, u1 + 2 * Q61 - v);
        prop_assert!(t0 < 4 * Q61 && t1 < 4 * Q61);
        // Residues: t0 ≡ u + x·w, t1 ≡ u − x·w (mod q).
        let (ur, xw) = (q.reduce(u), q.mul(q.reduce(x), w));
        prop_assert_eq!(q.reduce(t0), q.add(ur, xw));
        prop_assert_eq!(q.reduce(t1), q.sub(ur, xw));
    }

    /// The inverse Gentleman–Sande lazy butterfly: `[0, 2q)` inputs give
    /// `[0, 2q)` outputs (sum cond-subtracts `2q`, difference goes through
    /// the lazy Shoup product).
    #[test]
    fn inverse_butterfly_stays_below_2q(
        u in 0..2 * Q61,
        v in 0..2 * Q61,
        w in 1..Q61,
    ) {
        let q = Modulus::new(Q61).unwrap();
        let s = q.shoup(w);
        let mut t0 = u + v;
        if t0 >= 2 * Q61 {
            t0 -= 2 * Q61;
        }
        let t1 = q.mul_shoup_lazy(u + 2 * Q61 - v, s);
        prop_assert!(t0 < 2 * Q61 && t1 < 2 * Q61);
        let (ur, vr) = (q.reduce(u), q.reduce(v));
        prop_assert_eq!(q.reduce_2q(t0), q.add(ur, vr));
        prop_assert_eq!(q.reduce_2q(t1), q.mul(q.sub(ur, vr), w));
    }

    /// `reduce_2q` canonicalizes the whole lazy range with one conditional
    /// subtraction.
    #[test]
    fn reduce_2q_canonicalizes(a in 0..2 * Q61) {
        let q = Modulus::new(Q61).unwrap();
        let r = q.reduce_2q(a);
        prop_assert!(r < Q61);
        prop_assert_eq!(r, q.reduce(a));
    }
}

/// Full lazy transforms at the largest NTT-friendly primes the width limit
/// admits, with worst-case coefficients: every lazy intermediate the API
/// exposes stays `< 2q`, and canonical entry points stay `< q`.
#[test]
fn lazy_ntt_ranges_at_width_limit() {
    for n in [256usize, 2048] {
        let q = Modulus::new(generate_ntt_primes(61, n, 1).expect("61-bit NTT prime")[0]).unwrap();
        assert_eq!(q.bits(), 61);
        let t = NttTable::new(q, n).unwrap();
        let two_q = 2 * q.value();

        // Worst case: every input at the lazy ceiling 2q-1 (the forward
        // transform accepts the full [0, 2q) range).
        let mut a = vec![two_q - 1; n];
        t.forward_lazy(&mut a);
        assert!(a.iter().all(|&x| x < two_q), "forward_lazy breached 2q at n={n}");

        let mut b = a.clone();
        t.inverse_lazy(&mut b);
        assert!(b.iter().all(|&x| x < two_q), "inverse_lazy breached 2q at n={n}");

        // Canonical entry points normalize fully, from the same lazy input.
        let mut c = vec![two_q - 1; n];
        t.forward(&mut c);
        assert!(c.iter().all(|&x| x < q.value()), "forward not canonical at n={n}");
        t.inverse(&mut c);
        assert!(c.iter().all(|&x| x < q.value()), "inverse not canonical at n={n}");

        // And the lazy/canonical pair agree residue-wise.
        let mut d = vec![two_q - 1; n];
        t.forward(&mut d);
        let a_canon: Vec<u64> = a.iter().map(|&x| q.reduce_2q(x)).collect();
        assert_eq!(a_canon, d, "forward_lazy disagrees with forward mod q at n={n}");
    }
}
