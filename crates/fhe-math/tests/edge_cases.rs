//! Boundary-condition tests: extreme moduli, maximum transform sizes, and
//! degenerate inputs.

use fhe_math::{generate_ntt_primes, Modulus, NttTable, SignedDigitDecomposer, UBig};

#[test]
fn mersenne_61_is_a_valid_modulus() {
    // 2^61 - 1 is prime and exactly at the width limit.
    let q = Modulus::new((1u64 << 61) - 1).unwrap();
    assert_eq!(q.bits(), 61);
    let a = q.value() - 1;
    assert_eq!(q.mul(a, a), 1); // (-1)^2
    assert_eq!(q.inv(a).unwrap(), a);
}

#[test]
fn width_limit_is_enforced_exactly() {
    assert!(Modulus::new((1u64 << 61) + 1).is_err());
    assert!(Modulus::new(u64::MAX).is_err());
}

#[test]
fn ntt_at_maximum_supported_size() {
    // 2^17 is the documented ceiling (one step above the paper's 2^16).
    let n = 1 << 17;
    let q = Modulus::new(generate_ntt_primes(40, n, 1).unwrap()[0]).unwrap();
    let t = NttTable::new(q, n).unwrap();
    let mut a: Vec<u64> = (0..n as u64).map(|i| i % q.value()).collect();
    let original = a.clone();
    t.forward(&mut a);
    t.inverse(&mut a);
    assert_eq!(a, original);
    assert!(NttTable::new(q, n * 2).is_err());
}

#[test]
fn zero_polynomial_transforms_to_zero() {
    let n = 64;
    let q = Modulus::new(generate_ntt_primes(36, n, 1).unwrap()[0]).unwrap();
    let t = NttTable::new(q, n).unwrap();
    let mut a = vec![0u64; n];
    t.forward(&mut a);
    assert!(a.iter().all(|&x| x == 0));
    t.forward_lazy(&mut a);
    // Lazy outputs are residues up to one multiple of q: 0 or q here.
    assert!(a.iter().all(|&x| q.reduce_2q(x) == 0));
}

#[test]
fn decomposer_extremes() {
    let d = SignedDigitDecomposer::new(1, 64).unwrap(); // bit-by-bit, exact
    assert_eq!(d.max_error(), 0);
    for t in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
        assert_eq!(d.recompose(&d.decompose(t)), t);
    }
}

#[test]
fn ubig_deep_division() {
    // (2^600) mod a 61-bit prime, checked against modular exponentiation.
    let q = Modulus::new((1u64 << 61) - 1).unwrap();
    let big = UBig::one().shl(600);
    assert_eq!(big.rem_u64(q.value()), q.pow(2, 600));
    // Big-by-big remainder with a wide divisor.
    let divisor = UBig::one().shl(123).add(&UBig::from_u64(17));
    let r = big.rem_big(&divisor);
    assert!(r.cmp_big(&divisor) == std::cmp::Ordering::Less);
}
