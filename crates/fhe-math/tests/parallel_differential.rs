//! Differential tests: the parallel backend must be **bit-identical** to
//! sequential execution for every kernel it touches.
//!
//! Each test runs the same computation twice — once strictly sequential
//! (thread cap 1, threshold maxed so nothing spawns) and once with the
//! threaded path forced even at toy sizes (threshold 0, cap 4) — and
//! compares raw residue vectors with `assert_eq!`. Determinism holds
//! because the backend partitions work into disjoint contiguous chunks
//! executing exactly the scalar code of the sequential path.

use std::sync::{Mutex, MutexGuard};

use fhe_math::{generate_ntt_primes, par, Modulus, Poly, RnsBasis, RnsContext, RnsPoly};

/// Serializes tests in this binary: the thread-cap / threshold knobs are
/// process-global.
fn knob_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` under both backends and returns (sequential, parallel) results.
fn both_backends<T, F: Fn() -> T>(f: F) -> (T, T) {
    par::set_max_threads(1);
    par::set_min_work(u64::MAX);
    let seq = f();
    par::set_max_threads(4);
    par::set_min_work(0);
    let par_out = f();
    par::set_max_threads(0);
    par::set_min_work(par::DEFAULT_MIN_WORK);
    (seq, par_out)
}

fn context(n: usize, channels: usize) -> (RnsContext, Vec<Modulus>) {
    let bits = if n <= 16 { 40 } else { 50 };
    let primes = generate_ntt_primes(bits, n, channels).expect("primes");
    let moduli: Vec<Modulus> = primes.iter().map(|&q| Modulus::new(q).expect("prime")).collect();
    let ctx = RnsContext::new(n, RnsBasis::new(moduli.clone()).expect("basis")).expect("context");
    (ctx, moduli)
}

/// Deterministic residues (keyed by channel and a salt) below `m`.
fn fill(n: usize, c: usize, salt: u64, m: Modulus) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (i ^ (c as u64) << 24 ^ salt).wrapping_mul(0x9e37_79b9_7f4a_7c15) % m.value())
        .collect()
}

fn rns_poly(n: usize, salt: u64, moduli: &[Modulus]) -> RnsPoly {
    let channels: Vec<Poly> = moduli
        .iter()
        .enumerate()
        .map(|(c, &m)| Poly::from_coeffs(fill(n, c, salt, m), m).expect("canonical"))
        .collect();
    RnsPoly::from_channels(channels).expect("rns poly")
}

fn coeffs_of(p: &RnsPoly) -> Vec<Vec<u64>> {
    p.channels().iter().map(|c| c.coeffs().to_vec()).collect()
}

#[test]
fn ntt_roundtrip_bit_identical() {
    let _g = knob_guard();
    for n in [8usize, 1024, 8192] {
        let (ctx, moduli) = context(n, 6);
        let (seq, par_out) = both_backends(|| {
            let mut p = rns_poly(n, 1, &moduli);
            p.to_ntt(ctx.tables()).expect("ntt");
            let ntt_form = coeffs_of(&p);
            p.to_coeff(ctx.tables()).expect("intt");
            (ntt_form, coeffs_of(&p))
        });
        assert_eq!(seq, par_out, "NTT round-trip diverged at n = {n}");
    }
}

#[test]
fn modup_moddown_bit_identical() {
    let _g = knob_guard();
    for n in [8usize, 1024, 8192] {
        let (ctx, moduli) = context(n, 7);
        let src_idx: Vec<usize> = (0..3).collect();
        let dst_idx: Vec<usize> = (3..7).collect();
        let q_idx: Vec<usize> = (0..5).collect();
        let p_idx: Vec<usize> = (5..7).collect();
        let src: Vec<Vec<u64>> = src_idx.iter().map(|&c| fill(n, c, 2, moduli[c])).collect();
        let q_data: Vec<Vec<u64>> = q_idx.iter().map(|&c| fill(n, c, 3, moduli[c])).collect();
        let p_data: Vec<Vec<u64>> = p_idx.iter().map(|&c| fill(n, c, 3, moduli[c])).collect();
        let (seq, par_out) = both_backends(|| {
            let src_refs: Vec<&[u64]> = src.iter().map(Vec::as_slice).collect();
            let up = ctx.modup(&src_refs, &src_idx, &dst_idx).expect("modup");
            let q_refs: Vec<&[u64]> = q_data.iter().map(Vec::as_slice).collect();
            let p_refs: Vec<&[u64]> = p_data.iter().map(Vec::as_slice).collect();
            let down = ctx.moddown(&q_refs, &p_refs, &q_idx, &p_idx).expect("moddown");
            (up, down)
        });
        assert_eq!(seq, par_out, "Modup/Moddown diverged at n = {n}");
    }
}

#[test]
fn elementwise_ops_bit_identical() {
    let _g = knob_guard();
    for n in [8usize, 1024, 8192] {
        let (ctx, moduli) = context(n, 6);
        let (seq, par_out) = both_backends(|| {
            let mut a = rns_poly(n, 4, &moduli);
            let mut b = rns_poly(n, 5, &moduli);
            a.to_ntt(ctx.tables()).expect("ntt a");
            b.to_ntt(ctx.tables()).expect("ntt b");
            let mut acc = a.mul_pointwise(&b).expect("mul");
            acc.add_assign(&a).expect("add");
            acc.sub_assign(&b).expect("sub");
            acc.neg_assign().expect("neg");
            coeffs_of(&acc)
        });
        assert_eq!(seq, par_out, "element-wise ops diverged at n = {n}");
    }
}

#[test]
fn automorphism_bit_identical() {
    let _g = knob_guard();
    for n in [8usize, 1024, 8192] {
        let (_ctx, moduli) = context(n, 6);
        let (seq, par_out) = both_backends(|| {
            let p = rns_poly(n, 6, &moduli);
            coeffs_of(&p.automorphism(5).expect("automorphism"))
        });
        assert_eq!(seq, par_out, "automorphism diverged at n = {n}");
    }
}
