//! A contained worker panic must auto-emit a flight-recorder dump: the
//! `run_contained` error path in `par` calls
//! [`telemetry::flight::fault_dump`], so an operator who configured a dump
//! directory gets the last ring of events as a Perfetto-loadable trace
//! fragment without any cooperation from the failing workload.
//!
//! Lives in its own integration-test binary because it owns the
//! process-global telemetry handle and the `par` tuning knobs.

use fhe_math::par;

#[test]
fn contained_worker_panic_writes_flight_dump() {
    let dir = std::env::temp_dir().join(format!("alchemist-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let tel = telemetry::Telemetry::enabled();
    tel.attach_flight_recorder(telemetry::FlightRecorder::with_default_capacity());
    assert!(telemetry::install(tel.clone()), "first install in this binary");
    telemetry::flight::set_fault_dump_dir(Some(dir.clone()));

    // Put some history in the ring so the dump has context to show.
    for i in 0..32u64 {
        tel.count_named("pre_fault.work", i);
        drop(tel.span("pre_fault.step"));
    }

    // Force the inline path so chunk 0 runs (and panics) deterministically
    // on any core count; silence the default panic hook for the contained
    // unwind so test output stays clean.
    par::set_min_work(u64::MAX);
    par::inject_worker_panic(0);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut v = vec![0u64; 64];
    let err = par::par_iter_mut(&mut v, 1, |i, x| *x = i as u64).unwrap_err();
    std::panic::set_hook(hook);
    par::set_min_work(par::DEFAULT_MIN_WORK);
    telemetry::flight::set_fault_dump_dir(None);

    assert_eq!((err.worker, err.chunk), (0, 0));
    assert_eq!(tel.snapshot().named_counter("par.worker_panic.contained"), 1);

    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("flight-") && name.ends_with("-worker_panic.json")
        })
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one dump for one contained panic");

    let text = std::fs::read_to_string(dumps[0].path()).unwrap();
    assert!(!text.is_empty());
    let doc = telemetry::json::parse(&text).expect("dump must be valid JSON");
    let events = doc.get("traceEvents").expect("Chrome-trace fragment shape");
    match events {
        telemetry::json::Json::Arr(items) => {
            assert!(!items.is_empty(), "dump must carry the pre-fault ring");
        }
        other => panic!("traceEvents must be an array, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir).ok();
}
