//! # Alchemist — a unified accelerator architecture for cross-scheme FHE
//!
//! Facade crate for the reproduction of *"Alchemist: A Unified Accelerator
//! Architecture for Cross-Scheme Fully Homomorphic Encryption"* (DAC 2024).
//! It re-exports the workspace crates so examples and downstream users need
//! a single dependency:
//!
//! * [`math`] — modular arithmetic, NTT (iterative / 4-step / radix-blocked),
//!   RNS base conversion, gadget decomposition ([`fhe_math`]),
//! * [`ckks`] — the approximate arithmetic FHE scheme ([`fhe_ckks`]),
//! * [`bgv`] — the exact-integer arithmetic FHE scheme ([`fhe_bgv`]),
//! * [`tfhe`] — the logic FHE scheme ([`fhe_tfhe`]),
//! * [`metaop`] — the paper's `(M_j A_j)_n R_j` Meta-OP layer,
//! * [`sim`] — the cycle-level Alchemist accelerator simulator
//!   ([`alchemist_core`]),
//! * [`baselines`] — CPU reference and modularized-accelerator comparators,
//! * [`bridge`] — CKKS→TFHE ciphertext switching ([`scheme_bridge`]),
//! * [`telemetry`] — spans, Meta-OP counters, and trace export
//!   (summary tree / JSON / Perfetto).
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-reproduction map.

pub use alchemist_core as sim;
pub use baselines;
pub use fhe_bgv as bgv;
pub use fhe_ckks as ckks;
pub use fhe_math as math;
pub use fhe_tfhe as tfhe;
pub use metaop;
pub use scheme_bridge as bridge;
pub use telemetry;
