//! Cross-crate integration: the Meta-OP layer, the scheme libraries, the
//! simulator and the baseline models must compose — the same operator
//! graphs flow from the functional code through the lowering into the
//! cycle model.

use alchemist::baselines::modular::WorkProfile;
use alchemist::math::{generate_ntt_primes, Modulus, NttTable};
use alchemist::metaop::ntt::NttLowering;
use alchemist::metaop::{MetaOpTrace, OpClass};
use alchemist::sim::{workloads, ArchConfig, Simulator};

#[test]
fn metaop_lowering_exact_at_production_sizes() {
    // N = 2^12 (a realistic per-unit sub-NTT size under 4-step at 2^16).
    let n = 1 << 12;
    let q = Modulus::new(generate_ntt_primes(36, n, 1).unwrap()[0]).unwrap();
    let table = NttTable::new(q, n).unwrap();
    let lowering = NttLowering::new(&table);
    let mut a: Vec<u64> =
        (0..n as u64).map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15)) % q.value()).collect();
    let mut reference = a.clone();
    let mut trace = MetaOpTrace::new();
    lowering.forward(&mut a, &mut trace);
    table.forward(&mut reference);
    assert_eq!(a, reference);
    // log2(4096) = 12 → 4 radix-8 blocks, each N/8 Meta-OPs of n = 3.
    assert_eq!(trace.total_ops(), 4 * (n as u64 / 8));
    assert!(trace.entries().iter().all(|(op, _)| op.n() == 3));
}

#[test]
fn trace_cost_model_matches_simulator_step_model() {
    // A trace executed on the simulator must cost exactly what the
    // Meta-OP cost model predicts when spread over all cores.
    let arch = ArchConfig::paper();
    let sim = Simulator::new(arch);
    let cores = arch.total_cores() as u64;
    let ops = cores * 10;
    let step = alchemist::sim::Step::compute("x", OpClass::Ntt, ops, 3);
    let report = sim.run(std::slice::from_ref(&step));
    let expected = ((10 * 5) as f64 / arch.pipeline_efficiency).ceil() as u64;
    assert_eq!(report.cycles, expected);
}

#[test]
fn workload_profiles_match_count_fractions() {
    // The simulator workload's operator mix must agree with the
    // independent multiply-count model (same graph, two accountings).
    let sp = workloads::CkksSimParams::paper().at_level(24);
    let cp = alchemist::metaop::counts::CkksCountParams::paper_default().at_level(24);
    let profile = WorkProfile::from_steps(&workloads::cmult(&sp));
    let counts = alchemist::metaop::counts::cmult(&cp);
    let sim_fracs = profile.fractions();
    // The simulator executes the *lazy* (Meta-OP) formulation, so compare
    // against the meta multiply counts, not the eager originals.
    let total_meta = counts.total_meta() as f64;
    let ntt_meta = counts.ntt.meta as f64 / total_meta;
    let bconv_meta = counts.bconv.meta as f64 / total_meta;
    assert!(
        (sim_fracs[0] - ntt_meta).abs() < 0.12,
        "NTT fraction: sim {} vs meta counts {ntt_meta}",
        sim_fracs[0],
    );
    assert!(
        (sim_fracs[1] - bconv_meta).abs() < 0.12,
        "Bconv fraction: sim {} vs meta counts {bconv_meta}",
        sim_fracs[1],
    );
}

#[test]
fn facade_reexports_are_usable() {
    // Spot-check that every subsystem is reachable through the facade.
    let _ = alchemist::math::is_prime(65537);
    let _ = alchemist::metaop::MetaOp::new(OpClass::Bconv, 8, 4);
    let _ = alchemist::sim::ArchConfig::paper();
    let _ = alchemist::baselines::designs::SHARP;
    let _ = alchemist::ckks::CkksParams::toy().unwrap();
    let _ = alchemist::tfhe::TfheParams::toy();
}

#[test]
fn slot_layout_locality_at_paper_shape() {
    // The paper's exact configuration: N = 16384 as 128 x 128 over 128
    // units — zero cross-unit accesses outside the transpose register file,
    // bit-exact against the reference 4-step transform.
    use alchemist::math::{generate_ntt_primes, FourStepNtt};
    use alchemist::sim::DistributedFourStepNtt;
    let q = Modulus::new(generate_ntt_primes(36, 16384, 1).unwrap()[0]).unwrap();
    let ntt = FourStepNtt::new(q, 128, 128).unwrap();
    let dist = DistributedFourStepNtt::new(&ntt, 128).unwrap();
    let mut data: Vec<u64> =
        (0..16384u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % q.value()).collect();
    let mut reference = data.clone();
    let stats = dist.forward(&mut data);
    ntt.forward(&mut reference);
    assert_eq!(data, reference);
    assert_eq!(stats.foreign_accesses, 0);
    assert_eq!(stats.transpose_words, 2 * 16384);
}

#[test]
fn bgv_and_ckks_share_the_keyswitch_graph() {
    // BGV's per-prime-digit relinearization is the dnum = L+1 point of the
    // same hybrid key-switch family the simulator compiles.
    let per_prime = workloads::CkksSimParams { n: 1 << 16, l_max: 44, level: 44, dnum: 45 };
    let hybrid = workloads::CkksSimParams::paper();
    let sim = Simulator::new(ArchConfig::paper());
    let a = sim.run(&workloads::keyswitch(&per_prime));
    let b = sim.run(&workloads::keyswitch(&hybrid));
    // Per-prime digits trade much larger Bconv/key traffic for exactness;
    // dnum = 4 must be cheaper (the design-space point SHARP/the paper use).
    assert!(a.cycles > b.cycles, "per-prime {} vs hybrid {}", a.cycles, b.cycles);
}

#[test]
fn simulator_time_scales_with_level() {
    let sim = Simulator::new(ArchConfig::paper());
    let p = workloads::CkksSimParams::paper();
    let hi = sim.run(&workloads::cmult(&p.at_level(44))).cycles;
    let lo = sim.run(&workloads::cmult(&p.at_level(10))).cycles;
    assert!(hi > lo, "higher level must cost more: {hi} vs {lo}");
}

#[test]
fn all_baselines_slower_than_alchemist_on_their_scheme() {
    let sim = Simulator::new(ArchConfig::paper());
    let p = workloads::CkksSimParams::paper();
    let boot = workloads::bootstrapping(&p);
    let ours = sim.run(&boot).seconds();
    let profile = WorkProfile::from_steps(&boot);
    for d in alchemist::baselines::all_designs() {
        if !d.arithmetic {
            continue;
        }
        let t = d.simulate(&profile).seconds;
        assert!(t > ours, "{} must be slower on bootstrapping: {t} vs {ours}", d.name);
    }
    let pbs = workloads::tfhe_pbs(&workloads::TfheSimParams::set_i(), 128);
    let ours_pbs = sim.run(&pbs).seconds();
    let pbs_profile = WorkProfile::from_steps(&pbs);
    for d in alchemist::baselines::all_designs() {
        if !d.logic {
            continue;
        }
        let t = d.simulate(&pbs_profile).seconds;
        assert!(t > ours_pbs, "{} must be slower on PBS", d.name);
    }
}
