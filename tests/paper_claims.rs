//! End-to-end assertions of the paper's headline claims, run against the
//! regenerated artifacts (see EXPERIMENTS.md for the full paper-vs-measured
//! record). Bands are deliberately generous: the goal is that who wins, by
//! roughly what factor, and where the crossovers fall all hold.

use alchemist::baselines::designs::{CRATERLAKE, MATCHA, SHARP, STRIX};
use alchemist::baselines::modular::WorkProfile;
use alchemist::baselines::published;
use alchemist::metaop::counts;
use alchemist::sim::{dse, workloads, ArchConfig, AreaModel, Simulator};

fn sim() -> Simulator {
    Simulator::new(ArchConfig::paper())
}

#[test]
fn claim_area_and_power_match_table5() {
    let m = AreaModel::new(ArchConfig::paper());
    assert!((m.total_mm2() - 181.086).abs() < 0.01);
    assert!((m.average_power_w() - 77.9).abs() < 0.1);
}

#[test]
fn claim_table7_speedups_are_tens_of_thousands() {
    // "Alchemist is up to 24,829x faster than CPU": simulated throughput
    // against the paper's published CPU reference must land in the same
    // decade for every row.
    let p = workloads::CkksSimParams::paper();
    let s = sim();
    let rows = [
        (workloads::pmult(&p), published::TABLE7[0]),
        (workloads::hadd(&p), published::TABLE7[1]),
        (workloads::keyswitch(&p), published::TABLE7[2]),
        (workloads::cmult(&p), published::TABLE7[3]),
        (workloads::rotation(&p), published::TABLE7[4]),
    ];
    for (steps, reference) in rows {
        let ours = 1.0 / s.run(&steps).seconds();
        let speedup = ours / reference.cpu;
        assert!(
            speedup > 0.4 * reference.speedup && speedup < 2.5 * reference.speedup,
            "{}: simulated speedup {speedup:.0}x vs paper {:.0}x",
            reference.op,
            reference.speedup
        );
    }
}

#[test]
fn claim_fig7a_multiply_reductions() {
    let p = counts::CkksCountParams::paper_default();
    // Paper: -3.4%, -23.3%, -37.1%. Accept the right sign and magnitude.
    let tfhe = counts::pbs(&counts::TfheCountParams::set_i()).change_pct();
    assert!((-8.0..0.0).contains(&tfhe), "TFHE {tfhe}%");
    let cm = counts::cmult(&p.at_level(24)).change_pct();
    assert!((-28.0..-18.0).contains(&cm), "Cmult {cm}%");
    let boot = counts::bootstrapping(&p, true).change_pct();
    assert!((-42.0..-30.0).contains(&boot), "BSP+ {boot}%");
    // The ordering the paper reports: savings grow with Bconv/Decomp share.
    assert!(boot < cm && cm < tfhe);
}

#[test]
fn claim_fig7b_utilization_gap() {
    // "overall utilization rate of about 0.86 ... an improvement of
    // approximately 1.57x over SHARP".
    let p = workloads::CkksSimParams::paper();
    let boot = workloads::bootstrapping(&p);
    let ours = sim().run(&boot);
    assert!(ours.utilization() > 0.75, "Alchemist boot utilization {}", ours.utilization());
    let profile = WorkProfile::from_steps(&boot);
    let sharp = SHARP.simulate(&profile).utilization;
    let clake = CRATERLAKE.simulate(&profile).utilization;
    let improvement = ours.utilization() / sharp;
    assert!(
        (1.3..2.0).contains(&improvement),
        "utilization improvement over SHARP: {improvement:.2} (paper ~1.57)"
    );
    assert!(clake < sharp, "CraterLake sits below SHARP (0.42 vs 0.55)");
}

#[test]
fn claim_fig6a_sharp_factor_two() {
    let p = workloads::CkksSimParams::paper();
    let s = sim();
    let boot = workloads::bootstrapping(&p);
    let helr = workloads::helr_iteration(&p);
    let ours_boot = s.run(&boot).seconds();
    let ours_helr = s.run(&helr).seconds();
    let sharp_boot = SHARP.simulate(&WorkProfile::from_steps(&boot)).seconds;
    let sharp_helr = SHARP.simulate(&WorkProfile::from_steps(&helr)).seconds;
    let avg = (sharp_boot / ours_boot + sharp_helr / ours_helr) / 2.0;
    assert!((1.5..3.0).contains(&avg), "avg speedup vs SHARP {avg:.2} (paper 2.0)");
}

#[test]
fn claim_fig6a_perf_per_area() {
    // "29.4x performance per area on average" across BTS/ARK/CLake+/SHARP.
    let p = workloads::CkksSimParams::paper();
    let s = sim();
    let boot = workloads::bootstrapping(&p);
    let helr = workloads::helr_iteration(&p);
    let ours_boot = s.run(&boot).seconds();
    let ours_helr = s.run(&helr).seconds();
    let our_area = AreaModel::new(ArchConfig::paper()).total_mm2();
    let bp = WorkProfile::from_steps(&boot);
    let hp = WorkProfile::from_steps(&helr);
    let mut total = 0.0;
    for d in
        [alchemist::baselines::designs::BTS, alchemist::baselines::designs::ARK, CRATERLAKE, SHARP]
    {
        let speedup =
            (d.simulate(&bp).seconds / ours_boot + d.simulate(&hp).seconds / ours_helr) / 2.0;
        total += speedup * d.area_14nm_mm2 / our_area;
    }
    let avg = total / 4.0;
    assert!((15.0..45.0).contains(&avg), "avg perf/area {avg:.1}x (paper 29.4x)");
}

#[test]
fn claim_fig6b_tfhe_asic_speedup() {
    // "a 7.0x overall speed up on average" vs Matcha and Strix.
    let s = sim();
    let mut total = 0.0;
    let mut count = 0;
    for tp in [workloads::TfheSimParams::set_i(), workloads::TfheSimParams::set_ii()] {
        let steps = workloads::tfhe_pbs(&tp, 128);
        let ours = s.run(&steps).seconds();
        let profile = WorkProfile::from_steps(&steps);
        total += MATCHA.simulate(&profile).seconds / ours;
        total += STRIX.simulate(&profile).seconds / ours;
        count += 2;
    }
    let avg = total / count as f64;
    assert!((4.0..11.0).contains(&avg), "TFHE ASIC avg speedup {avg:.1}x (paper 7.0x)");
}

#[test]
fn claim_dse_selects_the_papers_design_point() {
    // j = 8 lanes and slot-based partitioning win perf/area (§4.2, §5.3).
    let lanes = dse::lane_sweep();
    let best = lanes.iter().max_by(|a, b| a.perf_per_area().total_cmp(&b.perf_per_area())).unwrap();
    assert_eq!(best.label, "j=8");
    let parts = dse::partitioning_ablation();
    assert!(parts[0].perf_per_area() > parts[1].perf_per_area());
}

#[test]
fn claim_only_alchemist_supports_both_schemes() {
    for d in alchemist::baselines::all_designs() {
        assert!(!(d.arithmetic && d.logic), "{}", d.name);
    }
    // Alchemist runs both (the cross-scheme pipeline completes).
    let r = sim().run(&workloads::cross_scheme(
        &workloads::CkksSimParams::paper().at_level(20),
        &workloads::TfheSimParams::set_i(),
        2,
    ));
    assert!(r.cycles > 0);
}

#[test]
fn claim_sram_and_area_reductions_vs_sharp() {
    // "SRAM consumption is reduced by more than 60% and the overall area
    // is reduced by more than 50%" vs the latest arithmetic accelerator.
    let arch = ArchConfig::paper();
    let sram_mb = arch.total_sram_kib() as f64 / 1024.0;
    assert!(sram_mb / SHARP.onchip_mb < 0.40);
    let area = AreaModel::new(arch).total_mm2();
    assert!(area / SHARP.area_14nm_mm2 < 0.50);
}
