//! End-to-end functional FHE applications across both schemes — the
//! workloads the paper motivates, verified against plaintext computation.

use alchemist::ckks::workloads::{HelrIteration, MlpModel};
use alchemist::ckks::{
    CkksContext, CkksParams, Encoder, Evaluator, GaloisKeys, RelinKey, SecretKey,
};
use alchemist::tfhe::{gates, generate_keys, TfheParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn encrypted_mlp_inference_matches_plaintext() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let ctx = CkksContext::new(CkksParams::new(128, 6, 2, 30).unwrap()).unwrap();
    let sk = SecretKey::generate(&ctx, &mut rng).unwrap();
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng).unwrap();
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let model = MlpModel::random(enc.slots(), &mut rng);
    let gk = GaloisKeys::generate(&ctx, &sk, &model.required_rotations(), false, &mut rng).unwrap();
    let x: Vec<f64> = (0..enc.slots()).map(|i| ((i % 11) as f64 - 5.0) / 8.0).collect();
    let ct = sk.encrypt(&ctx, &enc.encode(&x).unwrap(), &mut rng).unwrap();
    let out = model.infer_encrypted(&ev, &enc, &ct, &gk, &rlk).unwrap();
    let got = enc.decode(&sk.decrypt(&out).unwrap()).unwrap();
    let want = model.infer_plain(&x);
    for j in 0..enc.slots() {
        assert!((got[j] - want[j]).abs() < 0.05, "slot {j}");
    }
}

#[test]
fn helr_training_improves_loss_over_iterations() {
    // Three encrypted gradient steps must track the plaintext trajectory
    // and reduce the (plaintext-computed) logistic loss.
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let ctx = CkksContext::new(CkksParams::new(128, 16, 3, 30).unwrap()).unwrap();
    let sk = SecretKey::generate(&ctx, &mut rng).unwrap();
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng).unwrap();
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let iter = HelrIteration::random(enc.slots(), &mut rng);
    let gk = GaloisKeys::generate(&ctx, &sk, &iter.required_rotations(), false, &mut rng).unwrap();

    let w0 = vec![0.0f64; enc.slots()];
    let mut ct_w = sk.encrypt(&ctx, &enc.encode(&w0).unwrap(), &mut rng).unwrap();
    let mut w_plain = w0;
    for step in 0..3 {
        ct_w = iter.step_encrypted(&ev, &enc, &ct_w, &gk, &rlk).unwrap();
        w_plain = iter.step_plain(&w_plain);
        let w_enc = enc.decode(&sk.decrypt(&ct_w).unwrap()).unwrap();
        let max_diff =
            w_enc.iter().zip(&w_plain).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(max_diff < 0.05 * (step + 1) as f64, "step {step}: drift {max_diff}");
    }
    // The weights must have moved (training happened).
    assert!(w_plain.iter().any(|&w| w.abs() > 1e-4));
}

#[test]
fn tfhe_comparator_circuit() {
    // 2-bit encrypted comparator: a > b via bootstrapped gates.
    let mut rng = ChaCha8Rng::seed_from_u64(44);
    let (client, server) = generate_keys(&TfheParams::toy(), &mut rng).unwrap();
    for a in 0u8..4 {
        for b in 0u8..4 {
            let a1 = client.encrypt_bit(a >> 1 & 1 == 1, &mut rng);
            let a0 = client.encrypt_bit(a & 1 == 1, &mut rng);
            let b1 = client.encrypt_bit(b >> 1 & 1 == 1, &mut rng);
            let b0 = client.encrypt_bit(b & 1 == 1, &mut rng);
            // a > b  =  a1·¬b1  +  (a1 == b1)·a0·¬b0.
            let gt_hi = gates::and(&server, &a1, &gates::not(&b1)).unwrap();
            let eq_hi = gates::xnor(&server, &a1, &b1).unwrap();
            let gt_lo = gates::and(&server, &a0, &gates::not(&b0)).unwrap();
            let lo_path = gates::and(&server, &eq_hi, &gt_lo).unwrap();
            let gt = gates::or(&server, &gt_hi, &lo_path).unwrap();
            assert_eq!(client.decrypt_bit(&gt), a > b, "a={a} b={b}");
        }
    }
}

#[test]
fn cross_scheme_application_flow() {
    // The paper's motivating hybrid pipeline, functionally: an arithmetic
    // phase (CKKS dot product) followed by a logic phase (TFHE threshold
    // comparison on the quantized result).
    let mut rng = ChaCha8Rng::seed_from_u64(45);

    // Arithmetic phase: score = <x, w> on CKKS.
    let ctx = CkksContext::new(CkksParams::small().unwrap()).unwrap();
    let sk = SecretKey::generate(&ctx, &mut rng).unwrap();
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let x = vec![0.8, -0.2, 0.5, 0.1];
    let w = vec![1.0, 0.5, -0.25, 2.0];
    let ct = sk.encrypt(&ctx, &enc.encode(&x).unwrap(), &mut rng).unwrap();
    let prod = ev.rescale(&ev.mul_plain(&ct, &enc.encode(&w).unwrap()).unwrap()).unwrap();
    let slots = enc.decode(&sk.decrypt(&prod).unwrap()).unwrap();
    let score: f64 = slots[..4].iter().sum();
    let expected: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
    assert!((score - expected).abs() < 1e-2);

    // Scheme switch (client-side re-encryption in this reproduction; the
    // accelerator-side bridge is a workload-graph concern, not a
    // cryptographic one here): quantize to 3 bits and threshold on TFHE.
    let quantized = ((score.clamp(0.0, 0.96) * 8.0) as u64).min(7) / 2; // in [0, 4)
    let (client, server) = generate_keys(&TfheParams::toy(), &mut rng).unwrap();
    let ct_q = client.encrypt_message(quantized, 8, &mut rng);
    let thresholded = server.bootstrap_with_lut(&ct_q, 8, |m| u64::from(m >= 2)).unwrap();
    let decision = client.decrypt_message(&thresholded, 8) == 1;
    assert_eq!(decision, score >= 0.5, "threshold decision must match plaintext");
}
