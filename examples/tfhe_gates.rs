//! Encrypted boolean circuits on TFHE: a ripple-carry adder built from
//! bootstrapped gates, plus a programmable-bootstrapping lookup table —
//! the logic-FHE side of the paper's cross-scheme motivation.
//!
//! ```sh
//! cargo run --release --example tfhe_gates
//! ```

use alchemist::tfhe::{gates, generate_keys, ClientKey, LweCiphertext, ServerKey, TfheParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One full-adder stage: (sum, carry_out).
fn full_adder(
    server: &ServerKey,
    a: &LweCiphertext,
    b: &LweCiphertext,
    carry: &LweCiphertext,
) -> Result<(LweCiphertext, LweCiphertext), alchemist::tfhe::TfheError> {
    let axb = gates::xor(server, a, b)?;
    let sum = gates::xor(server, &axb, carry)?;
    let and1 = gates::and(server, a, b)?;
    let and2 = gates::and(server, &axb, carry)?;
    let carry_out = gates::or(server, &and1, &and2)?;
    Ok((sum, carry_out))
}

fn encrypt_nibble(client: &ClientKey, value: u8, rng: &mut ChaCha8Rng) -> Vec<LweCiphertext> {
    (0..4).map(|i| client.encrypt_bit(value >> i & 1 == 1, rng)).collect()
}

fn decrypt_nibble(client: &ClientKey, bits: &[LweCiphertext]) -> u8 {
    bits.iter().enumerate().map(|(i, ct)| (client.decrypt_bit(ct) as u8) << i).sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let (client, server) = generate_keys(&TfheParams::toy(), &mut rng)?;

    // 4-bit encrypted addition: every gate is a programmable bootstrap —
    // the CMux/NTT workload the accelerator's Fig. 6b row measures.
    let (x, y) = (11u8, 6u8);
    println!("encrypting {x} and {y} as 4-bit values...");
    let xs = encrypt_nibble(&client, x, &mut rng);
    let ys = encrypt_nibble(&client, y, &mut rng);

    let t0 = std::time::Instant::now();
    let mut carry = gates::and(&server, &xs[0], &gates::not(&xs[0]))?; // enc(false)
    let mut sum_bits = Vec::new();
    for i in 0..4 {
        let (s, c) = full_adder(&server, &xs[i], &ys[i], &carry)?;
        sum_bits.push(s);
        carry = c;
    }
    sum_bits.push(carry);
    let elapsed = t0.elapsed();

    let sum =
        decrypt_nibble(&client, &sum_bits[..4]) + ((client.decrypt_bit(&sum_bits[4]) as u8) << 4);
    println!("encrypted {x} + {y} = {sum} ({} bootstrapped gates in {elapsed:?})", 4 * 5 + 1);
    assert_eq!(sum, x + y);

    // Programmable bootstrapping as a LUT engine: x^2 mod 8 in one shot.
    println!("\nprogrammable bootstrapping: m -> m^2 mod 8 for m in 0..4");
    for m in 0..4u64 {
        let ct = client.encrypt_message(m, 8, &mut rng);
        let sq = server.bootstrap_with_lut(&ct, 8, |v| v * v % 8)?;
        println!("  {m} -> {}", client.decrypt_message(&sq, 8));
        assert_eq!(client.decrypt_message(&sq, 8), m * m % 8);
    }
    println!("\nall encrypted results verified against plaintext.");
    Ok(())
}
