//! CKKS bootstrapping end to end: exhaust the modulus chain, refresh it
//! homomorphically (ModRaise → CoeffToSlot → EvalMod → SlotToCoeff), and
//! keep computing — the `BSP` workload of the paper's Fig. 6a, run
//! functionally at reduced parameters.
//!
//! ```sh
//! cargo run --release --example bootstrap_demo
//! ```

use alchemist::ckks::bootstrap::{Bootstrapper, EvalModConfig};
use alchemist::ckks::{
    CkksContext, CkksParams, Encoder, Evaluator, GaloisKeys, RelinKey, SecretKey,
};
use alchemist::sim::{workloads, ArchConfig, Simulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    println!("setting up N = 256, L = 16 context and bootstrapping keys...");
    let params = CkksParams::with_first_prime_bits(256, 16, 3, 45, 51)?;
    let ctx = CkksContext::new(params)?;
    let sk = SecretKey::generate(&ctx, &mut rng)?;
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng)?;
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let boot = Bootstrapper::new(&ctx, EvalModConfig::default())?;
    let gk = GaloisKeys::generate(&ctx, &sk, &boot.required_rotations(), true, &mut rng)?;

    let values: Vec<f64> = (0..enc.slots()).map(|j| 0.3 * ((j as f64) * 0.21).cos()).collect();
    let fresh = sk.encrypt(&ctx, &enc.encode(&values)?, &mut rng)?;

    // Burn the chain down to level 0.
    let exhausted = ev.level_down(&fresh, 0)?;
    println!("ciphertext exhausted at level {}", exhausted.level());

    let t0 = std::time::Instant::now();
    let refreshed = boot.bootstrap(&ev, &enc, &exhausted, &rlk, &gk)?;
    println!("bootstrap done in {:?}: level 0 -> level {}", t0.elapsed(), refreshed.level());

    let back = enc.decode(&sk.decrypt(&refreshed)?)?;
    let max_err = values.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("max slot error after refresh: {max_err:.4}");
    assert!(max_err < 0.05, "bootstrap precision degraded");

    // Prove the refreshed levels are usable: square the refreshed value.
    let squared = ev.rescale(&ev.mul(&refreshed, &refreshed, &rlk)?)?;
    let sq = enc.decode(&sk.decrypt(&squared)?)?;
    let sq_err = values.iter().zip(&sq).map(|(a, b)| (a * a - b).abs()).fold(0.0f64, f64::max);
    println!("post-bootstrap multiply: max error {sq_err:.4}");
    assert!(sq_err < 0.05);

    // The same pipeline at paper scale on the accelerator.
    let sim = Simulator::new(ArchConfig::paper());
    let r = sim.run(&workloads::bootstrapping(&workloads::CkksSimParams::paper()));
    println!(
        "\nAlchemist simulation of fully-packed bootstrapping (N = 2^16, L = 44):\n  {:.2} ms at utilization {:.2}",
        r.seconds() * 1e3,
        r.utilization()
    );
    Ok(())
}
