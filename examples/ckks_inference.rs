//! Encrypted neural-network inference (the LoLa-MNIST workload of the
//! paper's Fig. 6a): a two-layer square-activation network evaluated
//! homomorphically on CKKS, then the same operator graph timed on the
//! Alchemist cycle simulator at the paper's parameters.
//!
//! ```sh
//! cargo run --release --example ckks_inference
//! ```

use alchemist::ckks::workloads::MlpModel;
use alchemist::ckks::{
    CkksContext, CkksParams, Encoder, Evaluator, GaloisKeys, RelinKey, SecretKey,
};
use alchemist::sim::{workloads, ArchConfig, Simulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // Functional inference at reduced ring degree.
    println!("running encrypted inference (N = 256, 128 slots)...");
    let ctx = CkksContext::new(CkksParams::new(256, 6, 2, 30)?)?;
    let sk = SecretKey::generate(&ctx, &mut rng)?;
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng)?;
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);

    let model = MlpModel::random(enc.slots(), &mut rng);
    let gk = GaloisKeys::generate(&ctx, &sk, &model.required_rotations(), false, &mut rng)?;

    // A synthetic "image" (the simulator's time does not depend on data).
    let image: Vec<f64> = (0..enc.slots()).map(|i| ((i * 13 % 29) as f64 - 14.0) / 20.0).collect();
    let ct = sk.encrypt(&ctx, &enc.encode(&image)?, &mut rng)?;

    let t0 = std::time::Instant::now();
    let out_ct = model.infer_encrypted(&ev, &enc, &ct, &gk, &rlk)?;
    let cpu_time = t0.elapsed();

    let got = enc.decode(&sk.decrypt(&out_ct)?)?;
    let want = model.infer_plain(&image);
    let max_err = got.iter().zip(&want).map(|(g, w)| (g - w).abs()).fold(0.0f64, f64::max);
    let pred_enc =
        got.iter().take(10).enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
    let pred_plain =
        want.iter().take(10).enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);

    println!("  software inference time : {cpu_time:?}");
    println!("  max slot error          : {max_err:.4}");
    println!("  predicted class (enc)   : {pred_enc:?}  (plain: {pred_plain:?})");
    assert_eq!(pred_enc, pred_plain, "encrypted argmax must match plaintext");

    // The same graph on the accelerator at the paper's parameters.
    println!("\nsimulating the LoLa-MNIST graph on Alchemist (N = 2^14)...");
    let sim = Simulator::new(ArchConfig::paper());
    for (label, encrypted) in [("unencrypted weights", false), ("encrypted weights", true)] {
        let (_, steps) = workloads::lola_mnist(encrypted);
        let r = sim.run(&steps);
        println!(
            "  {label}: {:.1} us, utilization {:.2} (paper: 0.11 ms encrypted)",
            r.seconds() * 1e6,
            r.utilization()
        );
    }
    Ok(())
}
