//! Quickstart: a guided tour of the Alchemist reproduction.
//!
//! 1. Run arithmetic FHE (CKKS) in software: encrypt, add, multiply,
//!    rotate.
//! 2. Run logic FHE (TFHE) in software: encrypted NAND.
//! 3. Compile the same operations for the Alchemist accelerator and
//!    simulate cycles, time and utilization.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use alchemist::ckks::{
    CkksContext, CkksParams, Encoder, Evaluator, GaloisKeys, RelinKey, SecretKey,
};
use alchemist::sim::{workloads, ArchConfig, AreaModel, Simulator};
use alchemist::tfhe::{gates, generate_keys, TfheParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);

    // --- 1. Arithmetic FHE (CKKS) ---------------------------------------
    println!("== CKKS (arithmetic FHE) ==");
    let ctx = CkksContext::new(CkksParams::small()?)?;
    let sk = SecretKey::generate(&ctx, &mut rng)?;
    let rlk = RelinKey::generate(&ctx, &sk, &mut rng)?;
    let gk = GaloisKeys::generate(&ctx, &sk, &[1], false, &mut rng)?;
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);

    let xs = vec![1.5, -2.0, 3.25, 0.5];
    let ys = vec![2.0, 0.5, -1.0, 4.0];
    let ct_x = sk.encrypt(&ctx, &enc.encode(&xs)?, &mut rng)?;
    let ct_y = sk.encrypt(&ctx, &enc.encode(&ys)?, &mut rng)?;

    let sum = enc.decode(&sk.decrypt(&ev.add(&ct_x, &ct_y)?)?)?;
    let prod = enc.decode(&sk.decrypt(&ev.rescale(&ev.mul(&ct_x, &ct_y, &rlk)?)?)?)?;
    let rot = enc.decode(&sk.decrypt(&ev.rotate(&ct_x, 1, &gk)?)?)?;
    println!(
        "  x + y      = {:?}",
        &sum[..4].iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!(
        "  x * y      = {:?}",
        &prod[..4].iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!(
        "  rot(x, 1)  = {:?}",
        &rot[..4].iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );

    // --- 2. Logic FHE (TFHE) --------------------------------------------
    println!("\n== TFHE (logic FHE) ==");
    let (client, server) = generate_keys(&TfheParams::toy(), &mut rng)?;
    let a = client.encrypt_bit(true, &mut rng);
    let b = client.encrypt_bit(true, &mut rng);
    let nand = gates::nand(&server, &a, &b)?;
    println!("  NAND(true, true) = {}", client.decrypt_bit(&nand));
    let lut =
        server.bootstrap_with_lut(&client.encrypt_message(3, 8, &mut rng), 8, |m| m * 2 % 8)?;
    println!("  PBS LUT 2*m mod 8 on m=3 -> {}", client.decrypt_message(&lut, 8));

    // --- 3. The Alchemist accelerator -----------------------------------
    println!("\n== Alchemist accelerator (cycle simulator) ==");
    let arch = ArchConfig::paper();
    let sim = Simulator::new(arch);
    let area = AreaModel::new(arch);
    println!(
        "  config: {} units x {} cores x {} lanes @ {} GHz, {:.1} mm^2, {:.1} W",
        arch.units,
        arch.cores_per_unit,
        arch.lanes,
        arch.freq_ghz,
        area.total_mm2(),
        area.average_power_w()
    );
    let p = workloads::CkksSimParams::paper();
    for (name, steps) in [
        ("Cmult (N=2^16, L=44)", workloads::cmult(&p)),
        ("CKKS bootstrapping", workloads::bootstrapping(&p)),
        ("TFHE PBS x128", workloads::tfhe_pbs(&workloads::TfheSimParams::set_i(), 128)),
    ] {
        let r = sim.run(&steps);
        println!(
            "  {name}: {} cycles = {:.3} ms, utilization {:.2}",
            r.cycles,
            r.seconds() * 1e3,
            r.utilization()
        );
    }
    Ok(())
}
