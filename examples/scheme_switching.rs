//! Cross-scheme FHE end to end — the paper's §1 scenario, functionally:
//! compute a score with arithmetic FHE (CKKS), switch the *ciphertext*
//! into logic FHE (TFHE) without decrypting, and apply a non-polynomial
//! decision (threshold) via programmable bootstrapping.
//!
//! ```sh
//! cargo run --release --example scheme_switching
//! ```

use alchemist::bridge::CkksToTfheBridge;
use alchemist::ckks::{CkksContext, CkksParams, Encoder, Evaluator, SecretKey};
use alchemist::tfhe::{generate_keys, TfheParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    // CKKS with a 3-bit q0/Δ gap → the bridge maps integers into TFHE's
    // 8-sector torus.
    let ctx = CkksContext::new(CkksParams::with_first_prime_bits(64, 2, 1, 30, 33)?)?;
    let ckks_sk = SecretKey::generate(&ctx, &mut rng)?;
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);

    let (client, server) = generate_keys(&TfheParams::toy(), &mut rng)?;
    let bridge = CkksToTfheBridge::new(&ctx, &ckks_sk, &client, &mut rng)?;
    println!(
        "bridge ready: CKKS (N = {}, q0/Δ = {}) -> TFHE (n = {})",
        ctx.n(),
        bridge.message_space(),
        client.params().lwe_dim
    );

    // Arithmetic phase: add two encrypted integer scores on CKKS.
    for (a, b) in [(1u64, 2u64), (0, 1), (2, 1)] {
        let ct_a = ckks_sk.encrypt(&ctx, &enc.encode(&vec![a as f64; enc.slots()])?, &mut rng)?;
        let ct_b = ckks_sk.encrypt(&ctx, &enc.encode(&vec![b as f64; enc.slots()])?, &mut rng)?;
        let total = ev.level_down(&ev.add(&ct_a, &ct_b)?, 0)?;

        // Scheme switch: no decryption anywhere.
        let lwe = bridge.switch(&ctx, &total, 0)?;
        println!(
            "  CKKS {a} + {b} -> switched to TFHE, decrypts to {}",
            client.decrypt_message(&lwe, bridge.message_space())
        );

        // Logic phase: a non-polynomial function CKKS cannot express —
        // threshold (sum >= 3) via a programmable-bootstrapping LUT.
        let decision =
            server.bootstrap_with_lut(&lwe, bridge.message_space(), |m| u64::from(m >= 3))?;
        let flag = client.decrypt_message(&decision, bridge.message_space()) == 1;
        println!("    threshold (>= 3) on TFHE: {flag}");
        assert_eq!(flag, a + b >= 3);
    }
    println!("\ncross-scheme pipeline verified: CKKS arithmetic -> bridge -> TFHE logic.");
    Ok(())
}
