//! Exact-integer arithmetic FHE (BGV): SIMD computation over Z_257 with
//! batched slots — the "BFV/BGV" half of the paper's arithmetic-FHE
//! framing, whose operator graph (NTT, base conversion, DecompPolyMult)
//! is exactly what the Alchemist core accelerates.
//!
//! ```sh
//! cargo run --release --example exact_integers
//! ```

use alchemist::bgv::{BgvContext, BgvParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let ctx = BgvContext::new(BgvParams::toy()?)?;
    let sk = ctx.generate_secret_key(&mut rng);
    let rlk = ctx.generate_relin_key(&sk, &mut rng)?;
    let t = ctx.params().t();
    println!("BGV: N = {} slots over Z_{t}, L = {}", ctx.slots(), ctx.params().max_level());

    // Encrypted polynomial evaluation: f(x) = x^2 + 3x + 7 per slot, exact.
    let xs: Vec<u64> = (0..ctx.slots() as u64).map(|i| i % t).collect();
    let ct = ctx.encrypt(&sk, &xs, &mut rng)?;
    let sq = ctx.mul(&ct, &ct, &rlk)?; // level drops by 1
    let three_x = ctx.mod_switch(&ctx.mul_plain(&ct, &vec![3; ctx.slots()])?)?;
    let sum = ctx.add(&sq, &three_x)?;
    // + 7: add an encrypted constant at the matching level.
    let mut seven = ctx.encrypt(&sk, &vec![7; ctx.slots()], &mut rng)?;
    while seven.level() > sum.level() {
        seven = ctx.mod_switch(&seven)?;
    }
    let result = ctx.add(&sum, &seven)?;

    let got = ctx.decrypt(&sk, &result)?;
    for (i, &x) in xs.iter().enumerate().take(6) {
        let expect = (x * x + 3 * x + 7) % t;
        println!("  f({x}) = {} (expect {expect})", got[i]);
        assert_eq!(got[i], expect);
    }
    let all_ok = xs.iter().enumerate().all(|(i, &x)| got[i] == (x * x + 3 * x + 7) % t);
    assert!(all_ok);
    println!("all {} slots exact.", ctx.slots());
    Ok(())
}
