//! The paper's motivating scenario: a *cross-scheme* pipeline that
//! interleaves arithmetic FHE (CKKS training steps) with logic FHE (TFHE
//! comparisons) on one accelerator, and why modularized designs lose
//! utilization on it while Alchemist does not (Fig. 1).
//!
//! ```sh
//! cargo run --release --example cross_scheme
//! ```

use alchemist::baselines::designs::{CRATERLAKE, SHARP, STRIX};
use alchemist::baselines::modular::WorkProfile;
use alchemist::sim::{workloads, ArchConfig, Simulator};

fn main() {
    let sim = Simulator::new(ArchConfig::paper());
    let ckks = workloads::CkksSimParams::paper().at_level(24);
    let tfhe = workloads::TfheSimParams::set_i();

    println!("cross-scheme pipeline: 4 rounds of (CKKS Cmult -> TFHE PBS batch)\n");
    let steps = workloads::cross_scheme(&ckks, &tfhe, 4);
    let ours = sim.run(&steps);
    println!(
        "Alchemist: {:.3} ms total, utilization {:.2}",
        ours.seconds() * 1e3,
        ours.utilization()
    );
    let fractions = ours.class_time_fractions();
    println!("time split by operator class:");
    for (class, f) in fractions {
        println!("  {class:<18} {:.0}%", f * 100.0);
    }

    // A modularized single-scheme design cannot even run the whole
    // pipeline; running each half on its specialist still strands silicon.
    println!("\nmodularized alternatives (each runs only its half):");
    let ckks_half = workloads::cmult(&ckks);
    let tfhe_half = workloads::tfhe_pbs(&tfhe, 16);
    let ckks_profile = WorkProfile::from_steps(&ckks_half);
    let tfhe_profile = WorkProfile::from_steps(&tfhe_half);
    for d in [SHARP, CRATERLAKE] {
        let r = d.simulate(&ckks_profile);
        println!(
            "  {:<11} CKKS half: utilization {:.2} (cannot run the TFHE half)",
            d.name, r.utilization
        );
    }
    let r = STRIX.simulate(&tfhe_profile);
    println!(
        "  {:<11} TFHE half: utilization {:.2} (cannot run the CKKS half)",
        STRIX.name, r.utilization
    );

    println!(
        "\nA SHARP + Strix pair spends {:.0} mm^2 of silicon with half of it idle at any\n\
         time; Alchemist runs the whole pipeline on {:.0} mm^2 at {:.0}% utilization.",
        SHARP.area_14nm_mm2 + STRIX.area_14nm_mm2,
        alchemist::sim::AreaModel::new(ArchConfig::paper()).total_mm2(),
        ours.utilization() * 100.0
    );
}
